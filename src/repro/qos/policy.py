"""Adaptive execution-path policies driven by online error estimates.

A :class:`QoSPolicy` closes the infer/collect/accurate loop: given the
rolling error statistics a :class:`~repro.qos.monitor.QoSController`
maintains from shadow validation, it returns a :class:`PolicyAction`
whose ``path`` is an :class:`~repro.runtime.control.ExecutionPath`
override (consumed by ``decide_path``/``ApproxRegion``), plus optional
shadow forcing (probes) and commit selection.

Policies included:

* :class:`ThresholdPolicy` — trip to the accurate path when the EWMA
  error crosses ``high``; recover to inference only below ``low``
  (hysteresis, so estimates oscillating inside the band cannot flap the
  path); while tripped, periodic *probe* invocations keep the error
  estimate alive.
* :class:`ErrorBudgetPolicy` — charge every inferred invocation its
  current error estimate and route to the accurate path whenever
  admitting another inference would push the mean charge over the
  budget: the deployed QoI error is capped by construction.
* :class:`DriftBurstPolicy` — a Page-Hinkley test on the error stream
  triggers a burst of ``collect`` invocations that runs the accurate
  kernel *and* appends fresh (input, output) rows to the training
  database, so the surrogate can be retrained on the drifted
  distribution.
* :class:`PeriodicRecalibrationPolicy` — the Fig. 9 interleave pattern
  as a policy: every ``period`` invocations, ``n_accurate`` run the
  accurate path (optionally collecting), bounding auto-regressive
  error compounding.
* :class:`BudgetArbitrationPolicy` — the cross-region analogue of
  :class:`ErrorBudgetPolicy`: one instance attached to a *shared*
  controller (see :class:`repro.serving.QoSArbiter`) splits a single
  global error budget across every region it serves, water-filling
  per-region allocations from the observed error statistics so cheap
  regions keep their inference share while expensive ones are forced
  accurate.
* :class:`CompositePolicy` — chains policies; the first override wins,
  every policy observes every error.
"""

from __future__ import annotations

import math

from ..runtime.control import ExecutionPath
from .monitor import PageHinkley, RegionErrorStats

__all__ = ["PolicyAction", "QoSPolicy", "ThresholdPolicy",
           "ErrorBudgetPolicy", "DriftBurstPolicy",
           "PeriodicRecalibrationPolicy", "BudgetArbitrationPolicy",
           "CompositePolicy"]


class PolicyAction:
    """What a policy wants for one invocation.

    ``path`` is an :class:`ExecutionPath` value or None (no override);
    ``force_shadow`` requests shadow validation regardless of the
    sampler; ``commit`` optionally overrides the controller's commit
    mode for this invocation (probes commit the accurate result — the
    estimate says the surrogate is untrustworthy).
    """

    __slots__ = ("path", "force_shadow", "commit", "reason")

    def __init__(self, path: str | None = None, force_shadow: bool = False,
                 commit: str | None = None, reason: str | None = None):
        self.path = path
        self.force_shadow = force_shadow
        self.commit = commit
        self.reason = reason

    def __repr__(self):
        return (f"PolicyAction(path={self.path!r}, "
                f"force_shadow={self.force_shadow}, commit={self.commit!r}, "
                f"reason={self.reason!r})")


class QoSPolicy:
    """Base class: stateless pass-through (monitor-only)."""

    def decide(self, region_name: str,
               stats: RegionErrorStats) -> PolicyAction | None:
        """Called before every statically-infer invocation."""
        return None

    def observe(self, region_name: str, error: float,
                stats: RegionErrorStats) -> None:
        """Called after every shadow-validated invocation."""

    def snapshot(self) -> dict:
        return {"policy": type(self).__name__}

    def reset(self) -> None:
        pass


class ThresholdPolicy(QoSPolicy):
    """Threshold with hysteresis plus probing.

    State machine per region: *inferring* until the EWMA error exceeds
    ``high``, then *tripped* (accurate path) until a probe-refreshed
    EWMA falls below ``low``.  ``low < high`` is the hysteresis band:
    an estimate wandering inside it never changes state, so the region
    cannot flap between paths.  While tripped, every
    ``probe_interval``-th invocation runs shadow-validated inference
    committing the accurate result — the QoI stays safe, but the error
    estimate keeps tracking the workload so recovery is possible.
    The first ``warmup`` invocations are probes too: nothing is
    admitted on trust before any error has been measured.
    """

    def __init__(self, high: float, low: float | None = None,
                 probe_interval: int = 8, warmup: int = 1):
        if low is None:
            low = high / 2.0
        if not 0.0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got low={low}, "
                             f"high={high}")
        if probe_interval < 1:
            raise ValueError(f"probe_interval must be >= 1: {probe_interval}")
        self.high = high
        self.low = low
        self.probe_interval = probe_interval
        self.warmup = warmup
        self._state: dict[str, dict] = {}
        self.trips = 0
        self.recoveries = 0

    def _region(self, name: str) -> dict:
        st = self._state.get(name)
        if st is None:
            st = self._state[name] = {"tripped": False, "since": 0}
        return st

    def observe(self, region_name, error, stats):
        st = self._region(region_name)
        if not st["tripped"]:
            if stats.mean > self.high:
                st["tripped"] = True
                st["since"] = 0
                self.trips += 1
        elif stats.mean < self.low:
            st["tripped"] = False
            self.recoveries += 1

    def decide(self, region_name, stats):
        st = self._region(region_name)
        if stats.count < self.warmup:
            return PolicyAction(force_shadow=True, commit="accurate",
                                reason="warmup")
        if not st["tripped"]:
            return None
        st["since"] += 1
        if st["since"] % self.probe_interval == 0:
            return PolicyAction(force_shadow=True, commit="accurate",
                                reason="probe")
        return PolicyAction(ExecutionPath.ACCURATE, reason="threshold")

    def snapshot(self):
        return {"policy": "threshold", "high": self.high, "low": self.low,
                "probe_interval": self.probe_interval, "trips": self.trips,
                "recoveries": self.recoveries,
                "tripped": {n: st["tripped"]
                            for n, st in self._state.items()}}

    def reset(self):
        self._state.clear()
        self.trips = 0
        self.recoveries = 0


class ErrorBudgetPolicy(QoSPolicy):
    """Cap the mean deployed error at ``budget``.

    Every invocation routed to inference is charged the current error
    estimate (EWMA mean, or the sketch quantile with
    ``pessimistic=True``); accurate invocations are charged zero.  The
    policy admits an inference only if the post-admission mean charge
    stays within ``budget * headroom``.  The first ``warmup``
    invocations are forced shadow probes (committing the accurate
    result) so the estimate exists before anything is admitted on
    trust.
    """

    def __init__(self, budget: float, headroom: float = 0.9,
                 warmup: int = 3, pessimistic: bool = False):
        if budget <= 0:
            raise ValueError(f"budget must be positive: {budget}")
        if not 0.0 < headroom <= 1.0:
            raise ValueError(f"headroom must be in (0, 1]: {headroom}")
        self.budget = budget
        self.headroom = headroom
        self.warmup = warmup
        self.pessimistic = pessimistic
        self._state: dict[str, dict] = {}

    def _region(self, name: str) -> dict:
        st = self._state.get(name)
        if st is None:
            st = self._state[name] = {"spent": 0.0, "decisions": 0,
                                      "inferred": 0, "denied": 0}
        return st

    def _estimate(self, stats: RegionErrorStats) -> float:
        est = stats.quantile if self.pessimistic else stats.mean
        return est if est == est else float("inf")     # NaN -> untrusted

    def decide(self, region_name, stats):
        st = self._region(region_name)
        st["decisions"] += 1
        if stats.count < self.warmup:
            # Probes measure but commit the accurate result: zero charge.
            return PolicyAction(force_shadow=True, commit="accurate",
                                reason="warmup")
        est = self._estimate(stats)
        admitted = (st["spent"] + est) / st["decisions"]
        if admitted > self.budget * self.headroom:
            st["denied"] += 1
            return PolicyAction(ExecutionPath.ACCURATE, reason="budget")
        st["spent"] += est
        st["inferred"] += 1
        return None

    def spend_for(self, region_name: str) -> float | None:
        """Current accumulated error charge for one region (telemetry
        hook: the decision stream records it per invocation)."""
        st = self._state.get(region_name)
        return st["spent"] if st is not None else None

    def snapshot(self):
        return {"policy": "error_budget", "budget": self.budget,
                "headroom": self.headroom, "pessimistic": self.pessimistic,
                "regions": {n: dict(st) for n, st in self._state.items()}}

    def reset(self):
        self._state.clear()


class DriftBurstPolicy(QoSPolicy):
    """Detect drift, answer with a collection burst that refreshes the DB.

    A per-region Page-Hinkley test watches the shadow error stream; when
    it fires, the next ``burst`` statically-infer invocations are
    overridden to the *collect* path — the accurate kernel runs and its
    (input, output) pairs are appended to the region's training
    database, giving the ML engineer fresh rows from the drifted
    distribution (the Fig. 9-style recalibration data).  The detector
    resets after each burst.
    """

    def __init__(self, burst: int = 32, threshold: float = 0.1,
                 delta: float = 0.005, burn_in: int = 5):
        if burst < 1:
            raise ValueError(f"burst must be >= 1: {burst}")
        self.burst = burst
        self.threshold = threshold
        self.delta = delta
        self.burn_in = burn_in
        self._state: dict[str, dict] = {}
        self.drifts = 0

    def _region(self, name: str) -> dict:
        st = self._state.get(name)
        if st is None:
            st = self._state[name] = {
                "detector": PageHinkley(delta=self.delta,
                                        threshold=self.threshold,
                                        burn_in=self.burn_in),
                "remaining": 0, "collected": 0}
        return st

    def observe(self, region_name, error, stats):
        st = self._region(region_name)
        if st["remaining"] == 0 and st["detector"].update(error):
            st["remaining"] = self.burst
            st["detector"].reset()
            self.drifts += 1

    def decide(self, region_name, stats):
        st = self._region(region_name)
        if st["remaining"] > 0:
            st["remaining"] -= 1
            st["collected"] += 1
            return PolicyAction(ExecutionPath.COLLECT, reason="drift-burst")
        return None

    def reset_region(self, region_name: str) -> None:
        """Drop one region's detector and any in-flight burst (a model
        hot-swap makes both describe weights that no longer serve)."""
        self._state.pop(region_name, None)

    def snapshot(self):
        return {"policy": "drift_burst", "burst": self.burst,
                "threshold": self.threshold, "drifts": self.drifts,
                "regions": {n: {"remaining": st["remaining"],
                                "collected": st["collected"],
                                "ph_statistic": st["detector"].statistic}
                            for n, st in self._state.items()}}

    def reset(self):
        self._state.clear()
        self.drifts = 0


class BudgetArbitrationPolicy(QoSPolicy):
    """Split one global error budget across every served region.

    A single instance rides a controller shared by *all* regions of a
    server (the per-region dicts every policy here keeps become the
    cross-region ledger).  Two invariants hold by construction:

    * **arbitrated shares** — per-region allocations are recomputed
      every ``rebalance_every`` decisions by water-filling: regions are
      visited in ascending order of estimated error and granted their
      full demand (traffic share × estimated cost) while budget mass
      remains, every allocation capped at the global per-decision mass.
      An invocation is admitted to inference only while its region's
      *current* estimated cost fits its allocation — per-invocation
      gating, not amortized averaging, because an "average" admission
      of an expensive inference is exactly what pushes a region's
      deployed L2 error past the budget.  A well-trained region's
      demand is tiny, so it always fits; an untrained or drifted
      region's demand exceeds its allocation and it is throttled onto
      the accurate path.
    * **global compliance** — every admitted inference is additionally
      charged into a global ledger, and an admission is denied whenever
      it would push the global mean charge per decision over the
      per-decision budget mass (the backstop against many regions
      simultaneously spending at their caps while estimates lag).

    ``charge`` selects the accounting units.  ``"squared"`` (the
    arbiter's default) charges ``estimate**2`` against
    ``(budget * headroom)**2`` — RMS semantics, so a mix of admitted
    inferences keeps the *L2/relative* deployed error under the budget
    (the metric shadow validation measures); with linear charging an
    occasional expensive admission can satisfy the mean yet blow the
    L2.  ``"linear"`` charges the raw estimate (mean-error semantics,
    matching :class:`ErrorBudgetPolicy`).

    ``spend_window`` bounds the ledgers' memory: every decision decays
    accumulated spend and decision mass by ``1 - 1/spend_window``, so
    a long-running server is judged on roughly its last
    ``spend_window`` decisions rather than constrained forever by
    ancient error spend (``None`` — the default — never forgets).

    The first ``warmup`` observations per region are forced shadow
    probes committing the accurate result (zero charge), so no region
    is admitted on trust before its error has ever been measured; a
    region with no estimate (NaN) is treated as infinitely expensive.
    While a region is being denied, every ``probe_interval``-th denial
    becomes a shadow probe (also committing accurate, also zero
    charge): the estimate keeps tracking the live model, so a region
    whose surrogate improves — e.g. after a retrain/hot-swap — earns
    its inference share back.
    """

    def __init__(self, global_budget: float, headroom: float = 0.9,
                 warmup: int = 2, rebalance_every: int = 32,
                 probe_interval: int = 8, pessimistic: bool = False,
                 charge: str = "squared", spend_window: int | None = None):
        if global_budget <= 0:
            raise ValueError(f"global_budget must be positive: "
                             f"{global_budget}")
        if not 0.0 < headroom <= 1.0:
            raise ValueError(f"headroom must be in (0, 1]: {headroom}")
        if rebalance_every < 1:
            raise ValueError(f"rebalance_every must be >= 1: "
                             f"{rebalance_every}")
        if probe_interval < 1:
            raise ValueError(f"probe_interval must be >= 1: "
                             f"{probe_interval}")
        if charge not in ("linear", "squared"):
            raise ValueError(f"charge must be 'linear' or 'squared': "
                             f"{charge!r}")
        if spend_window is not None and spend_window < 2:
            raise ValueError(f"spend_window must be >= 2 decisions: "
                             f"{spend_window}")
        self.global_budget = global_budget
        self.headroom = headroom
        self.warmup = warmup
        self.rebalance_every = rebalance_every
        self.probe_interval = probe_interval
        self.pessimistic = pessimistic
        self.charge = charge
        #: Exponentially-decayed spend ledgers: every decision scales
        #: the accumulated charge and decision mass by
        #: ``1 - 1/spend_window``, giving the ledger an effective
        #: memory of about ``spend_window`` decisions.  A long-running
        #: server's compliance statistic then tracks the *current*
        #: serving regime instead of being pinned by ancient spend;
        #: ``None`` keeps the original never-forgetting ledger.
        self.spend_window = spend_window
        self._keep = 1.0 - 1.0 / spend_window if spend_window else 1.0
        self._regions: dict[str, dict] = {}
        self._global_spent = 0.0
        self._global_decisions = 0.0
        self._since_rebalance = 0
        self.rebalances = 0

    def _cost(self, error: float) -> float:
        """One admitted inference's charge, in accounting units."""
        return error * error if self.charge == "squared" else error

    @property
    def _budget_mass(self) -> float:
        """Per-decision budget allowance, in accounting units."""
        return self._cost(self.global_budget * self.headroom)

    def _region(self, name: str) -> dict:
        st = self._regions.get(name)
        if st is None:
            st = self._regions[name] = {
                "spent": 0.0, "decisions": 0, "inferred": 0, "denied": 0,
                "estimate": math.inf, "allocation": self._budget_mass}
            # A new region changes every share: rebalance on the next
            # decision rather than waiting out the current period.
            self._since_rebalance = self.rebalance_every
        return st

    def _estimate(self, stats: RegionErrorStats) -> float:
        est = stats.quantile if self.pessimistic else stats.mean
        return est if est == est else math.inf         # NaN -> untrusted

    def _rebalance(self) -> None:
        """Water-fill per-region allocations from current estimates.

        Cheapest regions are granted their full demand first; what they
        leave funds the next cheapest.  Every allocation is capped at
        the global per-decision mass — that cap is what makes *each
        region's* deployed error respect the global budget, not just
        the fleet mean.  A granted demand gets 2×-in-error-units slack
        below the cap so a healthy region's estimate can fluctuate
        without flapping onto the accurate path, plus a floor of 0.1%
        of the mass so negligible-cost regions are never denied on
        numerical noise.  Regions with no measured estimate are granted
        nothing: they are admitted only after probes price them.
        """
        self._since_rebalance = 0
        self.rebalances += 1
        regions = list(self._regions.items())
        total = sum(max(st["decisions"], 1) for _, st in regions)
        remaining = self._budget_mass
        slack = self._cost(2.0)
        for name, st in sorted(regions, key=lambda kv: kv[1]["estimate"]):
            share = max(st["decisions"], 1) / total
            if not math.isfinite(st["estimate"]):
                st["allocation"] = 0.0
                continue
            demand = self._cost(st["estimate"])
            grant = min(share * demand, remaining)
            remaining -= grant
            st["allocation"] = min(
                max(slack * grant / share, self._budget_mass * 1e-3),
                self._budget_mass)

    def decide(self, region_name, stats):
        if self.spend_window is not None:
            # Age every ledger before accounting this decision: spend
            # and decision mass fade together, so the global mean
            # charge (and the water-filling traffic shares) reflect
            # roughly the last ``spend_window`` decisions.
            keep = self._keep
            self._global_spent *= keep
            self._global_decisions *= keep
            for other in self._regions.values():
                other["spent"] *= keep
                other["decisions"] *= keep
        st = self._region(region_name)
        st["decisions"] += 1
        self._global_decisions += 1
        self._since_rebalance += 1
        if self._since_rebalance >= self.rebalance_every:
            self._rebalance()
        if stats.count < self.warmup:
            return PolicyAction(force_shadow=True, commit="accurate",
                                reason="warmup")
        est = self._estimate(stats)
        st["estimate"] = est
        cost = self._cost(est) if math.isfinite(est) else math.inf
        # Per-invocation gating: the *current* estimated cost must fit
        # the region's allocation — amortizing expensive admissions
        # over cheap decisions is what the L2 budget cannot tolerate.
        region_ok = math.isfinite(cost) and cost <= st["allocation"]
        global_ok = (self._global_spent + cost) / self._global_decisions \
            <= self._budget_mass
        if not (region_ok and global_ok):
            st["denied"] += 1
            if st["denied"] % self.probe_interval == 0:
                return PolicyAction(force_shadow=True, commit="accurate",
                                    reason="probe")
            return PolicyAction(ExecutionPath.ACCURATE, reason="arbitration")
        st["spent"] += cost
        st["inferred"] += 1
        self._global_spent += cost
        return None

    def observe(self, region_name, error, stats):
        st = self._region(region_name)
        had_estimate = math.isfinite(st["estimate"])
        st["estimate"] = self._estimate(stats)
        if not had_estimate and math.isfinite(st["estimate"]):
            # First price for this region: rebalance on the next
            # decision instead of serving it a stale allocation.
            self._since_rebalance = self.rebalance_every

    def add_charge(self, region_name: str, error: float) -> None:
        """Charge an out-of-band error source against the ledgers.

        The mixed-precision hook: a region serving narrowed (float32)
        plans shadow-samples fp32-vs-fp64 divergence and charges it
        here, so precision loss spends the same budget mass as
        surrogate error — one global budget governs both axes of
        approximation.  Charges land in the region's ledger *and* the
        global ledger, exactly like an admitted inference's cost (in
        accounting units via ``_cost``), but add no decision mass.
        """
        cost = self._cost(float(error))
        st = self._region(region_name)
        st["spent"] += cost
        self._global_spent += cost

    def reset_region(self, region_name: str) -> None:
        """Forget one region's ledger and estimate (its global charges
        stay spent — conservative).  Used after a model hot-swap: the
        old estimate describes weights that no longer exist, so the
        region re-enters through warmup probes against the new model."""
        self._regions.pop(region_name, None)

    def spend_for(self, region_name: str) -> float | None:
        """One region's decayed ledger spend, in accounting units
        (telemetry hook: the decision stream records it per
        invocation)."""
        st = self._regions.get(region_name)
        return st["spent"] if st is not None else None

    @property
    def global_mean_charge(self) -> float:
        """Admitted error per arbitrated decision, in *error* units —
        the compliance statistic the global budget bounds.  With
        squared charging this is the RMS of admitted charges (which
        bounds the fleet's relative-L2 deployed error); with linear
        charging, the mean.
        """
        if self._global_decisions == 0:
            return 0.0
        mean_cost = self._global_spent / self._global_decisions
        return math.sqrt(mean_cost) if self.charge == "squared" \
            else mean_cost

    def snapshot(self):
        return {"policy": "budget_arbitration",
                "global_budget": self.global_budget,
                "headroom": self.headroom,
                "pessimistic": self.pessimistic,
                "charge": self.charge,
                "spend_window": self.spend_window,
                "global_decisions": self._global_decisions,
                "global_mean_charge": self.global_mean_charge,
                "rebalances": self.rebalances,
                "regions": {n: {k: (v if math.isfinite(v) else None)
                                if isinstance(v, float) else v
                                for k, v in st.items()}
                            for n, st in self._regions.items()}}

    def reset(self):
        self._regions.clear()
        self._global_spent = 0.0
        self._global_decisions = 0.0
        self._since_rebalance = 0
        self.rebalances = 0


class PeriodicRecalibrationPolicy(QoSPolicy):
    """Fig. 9-style Original:Surrogate cycles as a runtime policy.

    Of every ``period`` statically-infer invocations, the first
    ``n_accurate`` run the accurate path (the collect path with
    ``collect=True``, which also refreshes the training DB).  Unlike
    the static ``if`` clause this needs no step variable threaded
    through the application.
    """

    def __init__(self, period: int = 8, n_accurate: int = 2,
                 collect: bool = False):
        if period < 1 or not 0 <= n_accurate <= period:
            raise ValueError(f"need 0 <= n_accurate <= period, got "
                             f"{n_accurate}/{period}")
        self.period = period
        self.n_accurate = n_accurate
        self.collect = collect
        self._counters: dict[str, int] = {}

    def decide(self, region_name, stats):
        i = self._counters.get(region_name, 0)
        self._counters[region_name] = i + 1
        if i % self.period < self.n_accurate:
            path = ExecutionPath.COLLECT if self.collect \
                else ExecutionPath.ACCURATE
            return PolicyAction(path, reason="recalibration")
        return None

    def snapshot(self):
        return {"policy": "periodic_recalibration", "period": self.period,
                "n_accurate": self.n_accurate, "collect": self.collect,
                "invocations": dict(self._counters)}

    def reset(self):
        self._counters.clear()


class CompositePolicy(QoSPolicy):
    """Chain policies: first non-None override wins; all observe."""

    def __init__(self, *policies: QoSPolicy):
        self.policies = list(policies)

    def decide(self, region_name, stats):
        for policy in self.policies:
            action = policy.decide(region_name, stats)
            if action is not None:
                return action
        return None

    def observe(self, region_name, error, stats):
        for policy in self.policies:
            policy.observe(region_name, error, stats)

    def add_charge(self, region_name: str, error: float) -> None:
        for policy in self.policies:
            fn = getattr(policy, "add_charge", None)
            if fn is not None:
                fn(region_name, error)

    def reset_region(self, region_name: str) -> None:
        for policy in self.policies:
            reset = getattr(policy, "reset_region", None)
            if reset is not None:
                reset(region_name)

    def spend_for(self, region_name: str) -> float | None:
        """First member with a ledger entry for the region answers."""
        for policy in self.policies:
            fn = getattr(policy, "spend_for", None)
            if fn is not None:
                spend = fn(region_name)
                if spend is not None:
                    return spend
        return None

    def snapshot(self):
        return {"policy": "composite",
                "members": [p.snapshot() for p in self.policies]}

    def reset(self):
        for policy in self.policies:
            policy.reset()
