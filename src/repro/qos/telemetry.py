"""QoS telemetry: counters and per-path/per-phase serving summaries.

Layers on :class:`~repro.runtime.events.EventLog` — the Fig. 6 timing
instrumentation — a serving-oriented view: how many invocations took
which path (and why, when a policy overrode the directive), how many
were shadow-validated, and where the time went per path including the
validation overhead (the SHADOW phase).  Snapshots are plain dicts and
:meth:`QoSTelemetry.export` writes them as JSON for dashboards.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..runtime.control import ExecutionPath
from ..runtime.events import EventLog, Phase

__all__ = ["QoSTelemetry", "phase_summary"]


def phase_summary(event_log: EventLog,
                  start: int = 0) -> dict:
    """Per-path invocation counts and per-phase seconds of a record span.

    ``start`` slices the log (e.g. the beginning of a deployment
    window) so warm-up records do not pollute serving numbers.
    """
    per_path: dict[str, dict] = {}
    for rec in event_log.records[start:]:
        entry = per_path.get(rec.path)
        if entry is None:
            entry = per_path[rec.path] = {
                "count": 0, "seconds": {p.value: 0.0 for p in Phase}}
        entry["count"] += 1
        for phase, seconds in rec.times.items():
            entry["seconds"][phase.value] += seconds
    total = sum(sum(e["seconds"].values()) for e in per_path.values())
    shadow = sum(e["seconds"][Phase.SHADOW.value] for e in per_path.values())
    return {
        "paths": per_path,
        "total_seconds": total,
        "shadow_seconds": shadow,
        "validation_overhead": shadow / total if total > 0 else 0.0,
    }


class _RegionCounters:
    __slots__ = ("invocations", "base_paths", "final_paths", "overrides",
                 "reasons", "shadows", "shadow_error_sum", "shadow_error_max",
                 "fallbacks", "fallback_reasons", "health")

    def __init__(self):
        self.invocations = 0
        self.base_paths: dict[str, int] = {}
        self.final_paths: dict[str, int] = {}
        self.overrides = 0
        self.reasons: dict[str, int] = {}
        self.shadows = 0
        self.shadow_error_sum = 0.0
        self.shadow_error_max = 0.0
        self.fallbacks = 0
        self.fallback_reasons: dict[str, int] = {}
        #: Last breaker state reported for the region (None = never
        #: guarded, i.e. no circuit breaker attached or no event yet).
        self.health: str | None = None

    def snapshot(self) -> dict:
        return {
            "invocations": self.invocations,
            "base_paths": dict(self.base_paths),
            "final_paths": dict(self.final_paths),
            "overrides": self.overrides,
            "override_reasons": dict(self.reasons),
            "shadow_invocations": self.shadows,
            "shadow_error_mean": (self.shadow_error_sum / self.shadows
                                  if self.shadows else None),
            "shadow_error_max": self.shadow_error_max if self.shadows
            else None,
            "fallbacks": self.fallbacks,
            "fallback_reasons": dict(self.fallback_reasons),
            "health": self.health,
        }


class QoSTelemetry:
    """Counts QoS decisions and shadow observations per region."""

    def __init__(self):
        self._regions: dict[str, _RegionCounters] = {}

    def _region(self, name: str) -> _RegionCounters:
        counters = self._regions.get(name)
        if counters is None:
            counters = self._regions[name] = _RegionCounters()
        return counters

    # -- recording hooks (called by QoSController) -----------------------
    def record_decision(self, region_name: str, base_path: str,
                        final_path: str, shadow: bool = False,
                        reason: str | None = None) -> None:
        c = self._region(region_name)
        c.invocations += 1
        c.base_paths[base_path] = c.base_paths.get(base_path, 0) + 1
        c.final_paths[final_path] = c.final_paths.get(final_path, 0) + 1
        if final_path != base_path:
            c.overrides += 1
        if reason is not None:
            c.reasons[reason] = c.reasons.get(reason, 0) + 1

    def record_shadow(self, region_name: str, error: float) -> None:
        c = self._region(region_name)
        c.shadows += 1
        c.shadow_error_sum += float(error)
        c.shadow_error_max = max(c.shadow_error_max, float(error))

    def record_fallback(self, region_name: str, reason: str,
                        state: str | None = None) -> None:
        """One breaker-driven accurate fallback (denial or caught
        failure), called by the region's guarded infer path."""
        c = self._region(region_name)
        c.fallbacks += 1
        c.fallback_reasons[reason] = c.fallback_reasons.get(reason, 0) + 1
        if state is not None:
            c.health = state

    def record_health(self, region_name: str, state: str) -> None:
        """Report a region's current breaker state (e.g. at snapshot
        time, so recovered regions show healthy again)."""
        self._region(region_name).health = state

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict:
        return {name: counters.snapshot()
                for name, counters in self._regions.items()}

    def rollup(self) -> dict:
        """Cross-region aggregate: the serving-fleet view of the counters.

        Sums decisions, path outcomes, overrides, and shadow validation
        across every region a shared controller serves; the shadow
        error mean is observation-weighted.  This is what a
        multi-region server reports as one line.
        """
        invocations = overrides = shadows = fallbacks = 0
        error_sum = 0.0
        error_max = 0.0
        final_paths = {p: 0 for p in ExecutionPath.ALL}
        health: dict[str, int] = {}
        for c in self._regions.values():
            invocations += c.invocations
            overrides += c.overrides
            shadows += c.shadows
            fallbacks += c.fallbacks
            error_sum += c.shadow_error_sum
            error_max = max(error_max, c.shadow_error_max)
            for path, count in c.final_paths.items():
                final_paths[path] = final_paths.get(path, 0) + count
            if c.health is not None:
                health[c.health] = health.get(c.health, 0) + 1
        return {
            "regions": len(self._regions),
            "invocations": invocations,
            "final_paths": final_paths,
            "infer_fraction": (final_paths[ExecutionPath.INFER] / invocations
                               if invocations else 0.0),
            "overrides": overrides,
            "shadow_invocations": shadows,
            "shadow_error_mean": error_sum / shadows if shadows else None,
            "shadow_error_max": error_max if shadows else None,
            "fallbacks": fallbacks,
            "health": health,
        }

    def summary(self, event_log: EventLog | None = None,
                start: int = 0) -> dict:
        """Counters merged with the event log's per-path time breakdown."""
        out = {"regions": self.snapshot()}
        if event_log is not None:
            out["phases"] = phase_summary(event_log, start=start)
        return out

    def export(self, path, event_log: EventLog | None = None,
               start: int = 0) -> Path:
        """Write the summary as JSON (the serving-dashboard feed)."""
        path = Path(path)
        path.write_text(json.dumps(self.summary(event_log, start=start),
                                   indent=2, sort_keys=True) + "\n")
        return path

    def reset(self) -> None:
        self._regions.clear()
