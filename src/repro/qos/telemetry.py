"""QoS telemetry: counters and per-path/per-phase serving summaries.

Layers on :class:`~repro.runtime.events.EventLog` — the Fig. 6 timing
instrumentation — a serving-oriented view: how many invocations took
which path (and why, when a policy overrode the directive), how many
were shadow-validated, and where the time went per path including the
validation overhead (the SHADOW phase).

Since the observability PR this class is a **thin adapter over
:class:`repro.obs.MetricsRegistry`**: every count lives in a registry
metric (``qos_invocations``, ``qos_final_paths``,
``qos_shadow_error``, ``region_health``, ...) labeled by region, so
the same numbers surface through both the legacy ``snapshot()`` dict
shape (unchanged — dashboards and tests keep working) and the
registry's JSON export contract.  By default each telemetry instance
owns a private registry (test isolation); pass ``registry=`` to share
one, e.g. the process-wide ``repro.obs.metrics()``.

Snapshots are plain dicts and :meth:`QoSTelemetry.export` writes them
as JSON for dashboards — crash-safely, via the shared
tmp+fsync+replace path.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..obs import MetricsRegistry
from ..runtime.control import ExecutionPath
from ..runtime.events import EventLog, Phase

__all__ = ["QoSTelemetry", "phase_summary"]


def phase_summary(event_log: EventLog,
                  start: int = 0) -> dict:
    """Per-path invocation counts and per-phase seconds of a record span.

    ``start`` slices the log (e.g. the beginning of a deployment
    window) so warm-up records do not pollute serving numbers.  It is
    an *absolute* record index (capture ``event_log.seen`` at window
    start): the bounded ring may have evicted older raw records, and
    :meth:`EventLog.records_since` converts accordingly.
    """
    per_path: dict[str, dict] = {}
    records = event_log.records_since(start) \
        if hasattr(event_log, "records_since") else event_log.records[start:]
    for rec in records:
        entry = per_path.get(rec.path)
        if entry is None:
            entry = per_path[rec.path] = {
                "count": 0, "seconds": {p.value: 0.0 for p in Phase}}
        entry["count"] += 1
        for phase, seconds in rec.times.items():
            entry["seconds"][phase.value] += seconds
    total = sum(sum(e["seconds"].values()) for e in per_path.values())
    shadow = sum(e["seconds"][Phase.SHADOW.value] for e in per_path.values())
    return {
        "paths": per_path,
        "total_seconds": total,
        "shadow_seconds": shadow,
        "validation_overhead": shadow / total if total > 0 else 0.0,
    }


class _RegionMetrics:
    """Registry metric handles for one region (resolved once)."""

    __slots__ = ("registry", "region", "invocations", "overrides",
                 "shadows", "shadow_error", "fallbacks", "health",
                 "base_paths", "final_paths", "reasons", "fallback_reasons")

    def __init__(self, registry: MetricsRegistry, region: str):
        self.registry = registry
        self.region = region
        self.invocations = registry.counter("qos_invocations", region=region)
        self.overrides = registry.counter("qos_overrides", region=region)
        self.shadows = registry.counter("qos_shadow_invocations",
                                        region=region)
        self.shadow_error = registry.histogram("qos_shadow_error",
                                               region=region)
        self.fallbacks = registry.counter("qos_fallbacks", region=region)
        self.health = registry.gauge("region_health", region=region)
        # Label-keyed handle caches, filled on first use per label value.
        self.base_paths: dict = {}
        self.final_paths: dict = {}
        self.reasons: dict = {}
        self.fallback_reasons: dict = {}

    def _labeled(self, cache: dict, name: str, key: str, value: str):
        handle = cache.get(value)
        if handle is None:
            handle = cache[value] = self.registry.counter(
                name, region=self.region, **{key: value})
        return handle

    def snapshot(self) -> dict:
        shadows = int(self.shadows.value)
        return {
            "invocations": int(self.invocations.value),
            "base_paths": {p: int(c.value)
                           for p, c in self.base_paths.items()},
            "final_paths": {p: int(c.value)
                            for p, c in self.final_paths.items()},
            "overrides": int(self.overrides.value),
            "override_reasons": {r: int(c.value)
                                 for r, c in self.reasons.items()},
            "shadow_invocations": shadows,
            "shadow_error_mean": (self.shadow_error.sum / shadows
                                  if shadows else None),
            "shadow_error_max": self.shadow_error.max if shadows else None,
            "fallbacks": int(self.fallbacks.value),
            "fallback_reasons": {r: int(c.value)
                                 for r, c in self.fallback_reasons.items()},
            "health": self.health.value,
        }


class QoSTelemetry:
    """Counts QoS decisions and shadow observations per region."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._regions: dict[str, _RegionMetrics] = {}

    def _region(self, name: str) -> _RegionMetrics:
        rm = self._regions.get(name)
        if rm is None:
            rm = self._regions[name] = _RegionMetrics(self.registry, name)
        return rm

    # -- recording hooks (called by QoSController) -----------------------
    def record_decision(self, region_name: str, base_path: str,
                        final_path: str, shadow: bool = False,
                        reason: str | None = None) -> None:
        rm = self._region(region_name)
        rm.invocations.inc()
        rm._labeled(rm.base_paths, "qos_base_paths", "path", base_path).inc()
        rm._labeled(rm.final_paths, "qos_final_paths", "path",
                    final_path).inc()
        if final_path != base_path:
            rm.overrides.inc()
        if reason is not None:
            rm._labeled(rm.reasons, "qos_override_reasons", "reason",
                        reason).inc()

    def record_shadow(self, region_name: str, error: float) -> None:
        rm = self._region(region_name)
        rm.shadows.inc()
        rm.shadow_error.observe(float(error))

    def record_fallback(self, region_name: str, reason: str,
                        state: str | None = None) -> None:
        """One breaker-driven accurate fallback (denial or caught
        failure), called by the region's guarded infer path."""
        rm = self._region(region_name)
        rm.fallbacks.inc()
        rm._labeled(rm.fallback_reasons, "qos_fallback_reasons", "reason",
                    reason).inc()
        if state is not None:
            rm.health.set(state)

    def record_health(self, region_name: str, state: str) -> None:
        """Report a region's current breaker state (e.g. at snapshot
        time, so recovered regions show healthy again)."""
        self._region(region_name).health.set(state)

    # -- reporting -------------------------------------------------------
    def snapshot(self) -> dict:
        return {name: rm.snapshot() for name, rm in self._regions.items()}

    def rollup(self) -> dict:
        """Cross-region aggregate: the serving-fleet view of the counters.

        Sums decisions, path outcomes, overrides, and shadow validation
        across every region a shared controller serves; the shadow
        error mean is observation-weighted.  This is what a
        multi-region server reports as one line.
        """
        invocations = overrides = shadows = fallbacks = 0
        error_sum = 0.0
        error_max = 0.0
        final_paths = {p: 0 for p in ExecutionPath.ALL}
        health: dict[str, int] = {}
        for rm in self._regions.values():
            invocations += int(rm.invocations.value)
            overrides += int(rm.overrides.value)
            shadows += int(rm.shadows.value)
            fallbacks += int(rm.fallbacks.value)
            if rm.shadow_error.count:
                error_sum += rm.shadow_error.sum
                error_max = max(error_max, rm.shadow_error.max)
            for path, counter in rm.final_paths.items():
                final_paths[path] = final_paths.get(path, 0) \
                    + int(counter.value)
            if rm.health.value is not None:
                health[rm.health.value] = health.get(rm.health.value, 0) + 1
        return {
            "regions": len(self._regions),
            "invocations": invocations,
            "final_paths": final_paths,
            "infer_fraction": (final_paths[ExecutionPath.INFER] / invocations
                               if invocations else 0.0),
            "overrides": overrides,
            "shadow_invocations": shadows,
            "shadow_error_mean": error_sum / shadows if shadows else None,
            "shadow_error_max": error_max if shadows else None,
            "fallbacks": fallbacks,
            "health": health,
        }

    def summary(self, event_log: EventLog | None = None,
                start: int = 0) -> dict:
        """Counters merged with the event log's per-path time breakdown."""
        out = {"regions": self.snapshot()}
        if event_log is not None:
            out["phases"] = phase_summary(event_log, start=start)
        return out

    def export(self, path, event_log: EventLog | None = None,
               start: int = 0) -> Path:
        """Write the summary as JSON (the serving-dashboard feed).

        Crash-safe: lands through tmp+fsync+``os.replace``, so a
        dashboard polling the file never reads a torn summary.
        """
        from ..ioutil import atomic_write_text
        return atomic_write_text(
            path, json.dumps(self.summary(event_log, start=start),
                             indent=2, sort_keys=True) + "\n")

    def reset(self) -> None:
        self._regions.clear()
