"""HPAC-ML reproduction — embedding ML surrogates in scientific applications.

A from-scratch Python implementation of the SC24 paper *HPAC-ML: A
Programming Model for Embedding ML Surrogates in Scientific
Applications* (Fink et al.), including every substrate the paper
depends on: a NumPy autograd NN framework (:mod:`repro.nn`), a
hierarchical datastore (:mod:`repro.h5`), the directive compiler
frontend (:mod:`repro.directives`), the data bridge
(:mod:`repro.bridge`), the execution-control runtime
(:mod:`repro.runtime`), an online quality-of-service layer
(:mod:`repro.qos`), a simulated accelerator (:mod:`repro.device`),
the five evaluation mini-apps (:mod:`repro.apps`), Bayesian-optimization
neural-architecture search (:mod:`repro.search`), and a workflow
executor (:mod:`repro.workflow`).

Quickstart: see :mod:`repro.api` and ``examples/quickstart.py``.
"""

__version__ = "1.0.0"

from .api import approx_ml  # noqa: F401

__all__ = ["approx_ml", "__version__"]
