"""RegionServer: one serving surface for many approximated regions.

The paper's deployment story is a long-running application serving
many approximated regions at once; until this subsystem, each
:class:`~repro.runtime.region.ApproxRegion` was driven by its own
ad-hoc loop with its own QoS controller.  A :class:`RegionServer`
owns a set of regions, schedules their invocations through a
pluggable :class:`~repro.serving.backends.ExecutionBackend`, and
hosts a single QoS controller — typically a
:class:`~repro.serving.arbiter.QoSArbiter` — shared by every region,
so one global error budget governs the whole fleet.

Lifecycle::

    server = RegionServer(backend=ThreadPoolBackend())
    server.register(region_a)
    server.register(region_b)
    server.attach_qos(QoSArbiter(global_budget=0.05))
    ...
    server.invoke("region_a", *args)       # scheduled by the backend
    server.drain()                         # flush queues, barrier
    server.snapshot()                      # fleet roll-up
    server.close()
"""

from __future__ import annotations

from .backends import ExecutionBackend, SerialBackend

__all__ = ["ServedRegion", "RegionServer"]


class ServedRegion:
    """One region registered with a server, plus its serving counters."""

    __slots__ = ("name", "region", "invocations")

    def __init__(self, name: str, region):
        self.name = name
        self.region = region
        self.invocations = 0

    def __repr__(self):
        return (f"ServedRegion({self.name!r}, "
                f"invocations={self.invocations})")


class RegionServer:
    """Owns regions, schedules invocations, hosts the shared QoS loop."""

    def __init__(self, backend: ExecutionBackend | None = None):
        self.backend = backend if backend is not None else SerialBackend()
        self._regions: dict[str, ServedRegion] = {}
        self._qos = None
        self._stream = None
        self._fleet = None
        self._fleet_names: set = set()

    # -- registration ----------------------------------------------------
    def register(self, region, name: str | None = None) -> str:
        """Add a region under ``name`` (default: the region's own name).

        A server-level QoS controller already attached via
        :meth:`attach_qos` is wired onto the new region immediately.
        """
        name = name or region.name
        if name in self._regions:
            raise ValueError(f"region name {name!r} already registered")
        served = ServedRegion(name, region)
        self._regions[name] = served
        if self._qos is not None:
            region.config.qos = self._qos
        if self._stream is not None:
            region.events.stream = self._stream
        # Backend adoption hook: process backends take over the
        # region's engine execution (worker placement, slab ring) at
        # registration time rather than on the first invocation.
        self.backend.adopt(served)
        return name

    @property
    def names(self) -> tuple:
        return tuple(self._regions)

    def __contains__(self, name: str) -> bool:
        return name in self._regions

    def region(self, name: str):
        return self._regions[name].region

    def served(self, name: str) -> ServedRegion:
        return self._regions[name]

    # -- serving ---------------------------------------------------------
    def invoke(self, name: str, *args, **kwargs):
        """Schedule one invocation of region ``name``.

        With a :class:`SerialBackend` this returns the region's result
        directly; threaded backends return a Future.  Outputs written
        through the region's from-maps land when the invocation (and,
        for batched engines, its flush) has executed — call
        :meth:`drain` before reading them.
        """
        served = self._regions[name]
        served.invocations += 1
        return self.backend.submit(served, served.region, args, kwargs)

    def flush(self, name: str | None = None) -> None:
        """Flush one region's queues (or all), honoring backend affinity."""
        targets = [self._regions[name]] if name is not None \
            else list(self._regions.values())
        self.backend.drain(targets)

    def drain(self) -> None:
        """Flush every region and wait until all queued work landed."""
        self.flush()
        if self._stream is not None:
            self._stream.flush()

    # -- fleet grouping --------------------------------------------------
    @property
    def fleet(self):
        """The :class:`~repro.runtime.fleet.FleetInferenceEngine`
        serving fleet-grouped regions (None until :meth:`enable_fleets`)."""
        return self._fleet

    def enable_fleets(self, names=None, min_members: int = 2,
                      device=None, dtype=None) -> dict:
        """Opt ``names`` (default: all regions) into fleet grouping.

        Regions whose deployed models share a fleet fingerprint (same
        architecture, different weights) are grouped behind one
        :class:`~repro.runtime.fleet.FleetInferenceEngine`;
        :meth:`invoke_fleet` then serves each group's surrogate
        invocations as a single stacked forward.  Regions with no model
        path, no fleet lowering, or fewer than ``min_members``
        same-fingerprint peers stay on their single-model path.
        ``dtype=np.float32`` stacks narrowed slabs (the bandwidth-bound
        K-row GEMMs are where narrowing pays most).  Returns
        ``{fingerprint: [names]}`` for the fleets formed.
        """
        import numpy as np
        from ..runtime.fleet import FleetInferenceEngine
        engine = FleetInferenceEngine(
            device=device,
            dtype=np.float64 if dtype is None else dtype)
        for name in (names if names is not None else self._regions):
            region = self._regions[name].region
            if region.model_path is not None:
                engine.add_member(name, region.model_path)
        formed = engine.build(min_members=min_members)
        self._fleet = engine
        self._fleet_names = {n for members in formed.values()
                             for n in members}
        return formed

    def disable_fleets(self) -> None:
        """Drop fleet grouping; every region serves single-model again."""
        self._fleet = None
        self._fleet_names = set()

    def invoke_fleet(self, calls) -> dict:
        """Serve a wave of invocations, batching fleet members together.

        ``calls`` is ``{name: args_tuple}`` or an iterable of
        ``(name, args, kwargs)``.  Each region's QoS path decision is
        made individually (exactly once); members decided onto the
        plain surrogate path are gathered into their fleet's stacked
        forward, while the rest — accurate/collect routing, shadow
        validation, breaker-guarded regions, ungrouped members — run
        their normal single-model invocation with the already-made
        decision.  Returns ``{name: result}`` (``None`` for infer-path
        invocations, whose outputs land through the from-maps).
        """
        if isinstance(calls, dict):
            calls = [(name, args if isinstance(args, tuple) else (args,),
                      {}) for name, args in calls.items()]
        results: dict = {}
        gathered: dict = {}
        pending: dict = {}
        for name, args, kwargs in calls:
            served = self._regions[name]
            served.invocations += 1
            region = served.region
            env = region._bind_env(args, kwargs)
            path, decision = region.path_decision(env)
            if (self._fleet is not None and name in self._fleet_names
                    and region.fleet_eligible(path, decision)):
                inputs, record = region.prepare_infer(env, decision)
                gathered[name] = inputs
                pending[name] = (region, env, record)
                results[name] = None
            else:
                results[name] = region.invoke_decided(env, path, decision,
                                                      args, kwargs)
        if gathered:
            outputs = self._fleet.infer_many(gathered)
            share = self._fleet.last_inference_seconds / len(gathered)
            for name, out in outputs.items():
                region, env, record = pending[name]
                region.complete_infer(env, record, out, seconds=share)
        return results

    # -- QoS wiring ------------------------------------------------------
    @property
    def qos(self):
        """The server-level controller (None when serving unmonitored)."""
        return self._qos

    def attach_qos(self, controller, names=None) -> dict:
        """Attach one controller to ``names`` (default: every region).

        Returns ``{name: previous_controller}`` so a measurement window
        can restore prior wiring via :meth:`restore_qos`.  Without
        ``names`` the controller also becomes the server default,
        inherited by regions registered later.
        """
        previous = {}
        for name in (names if names is not None else self._regions):
            region = self._regions[name].region
            previous[name] = region.config.qos
            region.config.qos = controller
        if names is None:
            self._qos = controller
        return previous

    def restore_qos(self, previous: dict) -> None:
        """Undo an :meth:`attach_qos` using its returned mapping."""
        for name, controller in previous.items():
            self._regions[name].region.config.qos = controller

    def detach_qos(self) -> None:
        """Remove the server-level controller from every region."""
        for served in self._regions.values():
            served.region.config.qos = None
        self._qos = None

    # -- telemetry-stream wiring -----------------------------------------
    @property
    def stream(self):
        """The attached decision stream (None when not recording)."""
        return self._stream

    def attach_stream(self, stream):
        """Record every region's per-decision telemetry to ``stream``.

        ``stream`` is a :class:`~repro.obs.DecisionStream` or a path
        (one is created).  Each invocation then appends one record —
        inputs digest, path, shadow error, policy reason, budget
        spend, breaker state — to the h5 stream file; :meth:`drain`
        and :meth:`close` flush it.  Regions registered later inherit
        the stream.  Returns the stream.
        """
        from ..obs import DecisionStream
        if not isinstance(stream, DecisionStream):
            stream = DecisionStream(stream)
        self._stream = stream
        for served in self._regions.values():
            served.region.events.stream = stream
        return stream

    def detach_stream(self) -> None:
        """Stop recording; flushes and closes the current stream."""
        if self._stream is None:
            return
        for served in self._regions.values():
            if served.region.events.stream is self._stream:
                served.region.events.stream = None
        self._stream.close()
        self._stream = None

    # -- resilience wiring -----------------------------------------------
    def attach_breakers(self, names=None, **breaker_kwargs) -> dict:
        """Give each of ``names`` (default: all regions) its own
        :class:`~repro.resilience.CircuitBreaker`.

        Per-region, not shared: one region's broken surrogate must not
        demote its healthy neighbors.  ``breaker_kwargs`` parameterize
        every breaker (thresholds, probe cadence).  Returns the
        ``{name: breaker}`` mapping; regions that already carry a
        breaker keep it.
        """
        from ..resilience import CircuitBreaker
        out = {}
        for name in (names if names is not None else self._regions):
            region = self._regions[name].region
            if region.config.breaker is None:
                region.config.breaker = CircuitBreaker(name=name,
                                                       **breaker_kwargs)
            out[name] = region.config.breaker
        return out

    def breaker(self, name: str):
        """Region ``name``'s circuit breaker (None when unguarded)."""
        return self._regions[name].region.config.breaker

    # -- reporting / lifecycle -------------------------------------------
    def snapshot(self) -> dict:
        """Fleet view: per-region serving counters plus the controller's
        snapshot and cross-region telemetry roll-up when attached."""
        out = {
            "backend": type(self.backend).__name__,
            "regions": {name: {"invocations": served.invocations}
                        for name, served in self._regions.items()},
        }
        backend_snapshot = getattr(self.backend, "snapshot", None)
        if callable(backend_snapshot):
            # Process backends report worker health/placement; a dead
            # worker is visible here alongside the breaker states.
            out["backend_detail"] = backend_snapshot()
        if self._fleet is not None:
            out["fleets"] = self._fleet.snapshot()
        health = {}
        for name, served in self._regions.items():
            breaker = served.region.config.breaker
            if breaker is not None:
                health[name] = breaker.snapshot()
        if health:
            out["health"] = health
        if self._qos is not None:
            telemetry = getattr(self._qos, "telemetry", None)
            if telemetry is not None and hasattr(telemetry, "record_health"):
                for name, snap in health.items():
                    # Push current states so the roll-up's health view
                    # reflects recovery, not just the last fallback.
                    telemetry.record_health(name, snap["state"])
            out["qos"] = self._qos.snapshot()
            if telemetry is not None:
                out["rollup"] = telemetry.rollup()
        from .. import obs
        trace = obs.tracer().snapshot()
        out["obs"] = {
            "enabled": obs.is_enabled(),
            "traces_seen": trace["seen"],
            "traces_buffered": trace["buffered"],
            "stream": str(self._stream.path) if self._stream is not None
            else None,
        }
        return out

    def close(self) -> None:
        """Drain, release the backend, and close every region."""
        self.drain()
        self.backend.close()
        for served in self._regions.values():
            served.region.close()

    def __repr__(self):
        return (f"RegionServer(backend={type(self.backend).__name__}, "
                f"regions={list(self._regions)})")
