"""Shared-memory plan execution: the process-backend transport layer.

The GIL caps :class:`~repro.serving.backends.ThreadPoolBackend` at one
core — every compiled NumPy plan step contends for the interpreter
lock, so "concurrent" regions measure ~0.9× *serial*.  This module
moves the forward pass into worker **processes** while keeping tensor
traffic off the pickle path:

* :class:`SlabRing` — a ring of preallocated float64 slabs inside one
  ``multiprocessing.shared_memory`` segment, with a lease/return
  protocol.  The parent leases a slab, writes the ``(B, *features)``
  batch into it, and ships only ``(segment name, offset, shape)``
  across the pipe; the worker runs the forward and writes the outputs
  back into the *same* slab.  No array bytes are ever pickled on the
  hot path.
* :func:`worker_main` — the worker process loop.  Each worker owns a
  private :class:`~repro.runtime.infer.InferenceEngine` (its own model
  cache and compiled-plan cache), accumulates local obs counters and a
  forward-latency histogram, and answers a small request vocabulary:
  ``infer`` (slab handoff), ``infer_pickle`` (baseline transport for
  the IPC-overhead benchmark), ``invalidate``/``warmup`` (the hot-swap
  invalidation protocol — the parent broadcasts and waits for acks),
  ``counters`` (registry-format samples folded into the parent
  registry at snapshot), and ``ping``/``sleep``/``close``.
* :class:`WorkerHandle` — the parent-side endpoint.  Requests are
  serialized per worker; replies are awaited with a liveness poll so a
  killed worker raises :class:`WorkerCrashed` within ~50 ms and a
  wedged one is killed and raises :class:`WorkerTimeout` — failures
  surface through the region's circuit breaker instead of hanging
  ``drain``.
* :class:`RemoteEngineClient` plus the two engine adapters
  (:class:`ProcessInferenceEngine`,
  :class:`ProcessBatchedInferenceEngine`) — drop-in engines whose
  forward runs in a worker.  ``last_timing`` is populated from the
  worker's reply so the Fig. 6 INFERENCE phase accounting is
  unchanged, and the parent-side SURROGATE fault seam still fires so
  the PR-6 resilience harness exercises process backends too.

Worker-side segment attachment avoids ``SharedMemory(name=...)`` where
it can (a raw ``mmap`` of ``/dev/shm/<name>`` on Linux): the
``resource_tracker`` would otherwise adopt the parent's segments and
destroy them when the *worker* exits.
"""

from __future__ import annotations

import mmap
import os
import threading
import time
from multiprocessing import shared_memory

import numpy as np

from ..resilience import faults as _faults
from ..runtime.batch import BatchedInferenceEngine
from ..runtime.infer import InferenceEngine, ModelCache

__all__ = [
    "SlabRing", "WorkerHandle", "WorkerCrashed", "WorkerTimeout",
    "WorkerError", "RemoteEngineClient", "ProcessInferenceEngine",
    "ProcessBatchedInferenceEngine", "worker_main",
]

#: Smallest slab allocated (floats): 512 rows × 8 features.  Rings
#: grow by replacement when a batch exceeds the slot size.
_MIN_SLOT_FLOATS = 4096

#: Worker-side cap on cached segment attachments (stale rings are
#: evicted oldest-first; the parent never references a replaced ring
#: again, so eviction cannot race a live slab).
_ATTACH_CACHE = 8

#: Liveness poll period while awaiting a reply: a ``kill -9``'d worker
#: is detected within one period instead of hanging the request.
_POLL_SECONDS = 0.05


class WorkerCrashed(RuntimeError):
    """The worker process died (or its pipe broke) mid-request."""


class WorkerTimeout(RuntimeError):
    """The worker exceeded the request deadline and was killed."""


class WorkerError(RuntimeError):
    """The worker's request handler raised; carries the remote error."""


# ---------------------------------------------------------------------------
# Slab ring (parent side)
# ---------------------------------------------------------------------------
class SlabRing:
    """A ring of ``slots`` preallocated float64 slabs in one segment.

    Lease/return protocol: :meth:`lease` blocks until a slab is free
    and hands back its index; the caller fills :meth:`slot`, ships
    ``(name, index * slot_floats, shape)`` to a worker, reads the
    outputs back out of the same view, and :meth:`release`\\ s it.
    Thread-safe so several region-affinity threads can share one ring.
    """

    def __init__(self, slot_floats: int, slots: int = 4):
        if slot_floats < 1 or slots < 1:
            raise ValueError("slot_floats and slots must be >= 1")
        self.slot_floats = int(slot_floats)
        self.slots = int(slots)
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.slots * self.slot_floats * 8)
        self._flat = np.frombuffer(self._shm.buf, dtype=np.float64)
        self._free = list(range(self.slots))
        self._cond = threading.Condition()
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def outstanding(self) -> int:
        """Slabs currently leased."""
        return self.slots - len(self._free)

    def lease(self, timeout: float | None = None) -> int:
        with self._cond:
            deadline = None if timeout is None \
                else time.monotonic() + timeout
            while not self._free:
                if self._closed:
                    raise RuntimeError("slab ring is closed")
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise WorkerTimeout(
                        f"no free slab in {self.name} after {timeout}s")
                self._cond.wait(remaining)
            if self._closed:
                raise RuntimeError("slab ring is closed")
            return self._free.pop()

    def slot(self, index: int) -> np.ndarray:
        """The 1-D float64 view of slab ``index``."""
        base = index * self.slot_floats
        return self._flat[base:base + self.slot_floats]

    def release(self, index: int) -> None:
        with self._cond:
            self._free.append(index)
            self._cond.notify()

    def close(self) -> None:
        """Release and unlink the segment.  Idempotent."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._flat = None
        try:
            self._shm.close()
        except BufferError:
            pass                     # an escaped view pins the mapping
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    def __repr__(self):
        return (f"SlabRing({self.name!r}, slots={self.slots}, "
                f"slot_floats={self.slot_floats})")


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
def _attach_segment(name: str):
    """Attach a shared-memory segment by name, tracker-neutrally.

    Returns ``(flat float64 array, closer)``.  The Linux fast path
    mmaps ``/dev/shm/<name>`` directly — no resource-tracker
    registration, and the mapping stays valid after the parent unlinks
    a replaced ring.  The portable fallback attaches via
    :class:`SharedMemory` and unregisters it from the tracker so the
    worker's exit cannot destroy the parent's segment.
    """
    path = f"/dev/shm/{name}"
    if os.path.exists(path):
        fd = os.open(path, os.O_RDWR)
        try:
            size = os.fstat(fd).st_size
            buf = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        return np.frombuffer(buf, dtype=np.float64), buf.close
    shm = shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass
    return np.frombuffer(shm.buf, dtype=np.float64), shm.close


def worker_main(conn, index: int) -> None:
    """The worker process request loop (one per pool slot).

    Owns a private engine — model cache and compiled-plan cache live
    here, which is the whole point: plan execution no longer shares
    the parent's interpreter lock.  Local obs counters/histogram are
    shipped to the parent on ``counters`` requests (registry sample
    format) so the parent registry's exact-aggregates guarantee
    extends across the process boundary.
    """
    from ..obs.registry import Histogram
    engine = InferenceEngine()
    segments: dict = {}            # name -> (flat, closer), insertion order
    labels = {"worker": str(index)}
    requests = rows = errors = invalidations = 0
    forward_hist = Histogram("worker_forward_seconds", dict(labels))

    def attach(name: str) -> np.ndarray:
        cached = segments.get(name)
        if cached is not None:
            return cached[0]
        flat, closer = _attach_segment(name)
        segments[name] = (flat, closer)
        if len(segments) > _ATTACH_CACHE:
            stale = next(iter(segments))
            old_flat, old_closer = segments.pop(stale)
            del old_flat
            try:
                old_closer()
            except BufferError:
                pass               # a view escaped; leave it to exit
        return flat

    def samples() -> list:
        return [
            {"type": "counter", "name": "worker_infer_requests",
             "labels": dict(labels), "value": requests},
            {"type": "counter", "name": "worker_infer_rows",
             "labels": dict(labels), "value": rows},
            {"type": "counter", "name": "worker_infer_errors",
             "labels": dict(labels), "value": errors},
            {"type": "counter", "name": "worker_model_invalidations",
             "labels": dict(labels), "value": invalidations},
            forward_hist.sample(),
        ]

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        try:
            if op == "infer":
                # Per-message dtype negotiation: a trailing dtype-name
                # token reinterprets the float64-addressed slab as that
                # dtype (pre-negotiation clients omit it).  float32
                # messages thus pack 2x the payload per slot and ship
                # half the bytes each way.
                _, model_path, ring_name, offset, cap, shape = msg[:6]
                dt = np.dtype(msg[6] if len(msg) > 6 else np.float64)
                flat = attach(ring_name)
                scale = 8 // dt.itemsize        # dt units per f64 word
                fview = flat if dt == np.float64 else flat.view(dt)
                base, cap_units = offset * scale, cap * scale
                n_in = int(np.prod(shape))
                x = fview[base:base + n_in].reshape(shape)
                cpu0 = time.process_time()
                out = engine.infer(model_path, x,
                                   dtype=None if dt == np.float64 else dt)
                busy = time.process_time() - cpu0
                out = np.asarray(out, dtype=dt)
                requests += 1
                rows += len(x)
                forward_hist.observe(engine.last_timing.get(
                    "forward_wall", busy))
                if out.size <= cap_units:
                    fview[base:base + out.size] = out.reshape(-1)
                    conn.send(("ok", out.shape, engine.last_timing, busy))
                else:
                    # Output exceeds the slab: fall back to pickling
                    # this one reply (the client counts these so the
                    # benchmark can assert the hot path stayed at 0).
                    conn.send(("big", out, engine.last_timing, busy))
            elif op == "infer_pickle":
                _, model_path, x = msg[:3]
                dt = np.dtype(msg[3] if len(msg) > 3 else np.float64)
                cpu0 = time.process_time()
                out = engine.infer(model_path, x,
                                   dtype=None if dt == np.float64 else dt)
                busy = time.process_time() - cpu0
                requests += 1
                rows += len(x)
                forward_hist.observe(engine.last_timing.get(
                    "forward_wall", busy))
                conn.send(("ok", np.asarray(out, dtype=dt),
                           engine.last_timing, busy))
            elif op == "invalidate":
                _, model_path = msg
                if model_path is None:
                    engine.cache.clear()
                    engine._plans.clear()
                    dropped = True
                else:
                    dropped = engine.cache.invalidate(model_path)
                invalidations += 1
                conn.send(("ok", dropped))
            elif op == "warmup":
                engine.warmup(msg[1])
                conn.send(("ok",))
            elif op == "counters":
                conn.send(("ok", samples()))
            elif op == "ping":
                conn.send(("ok", os.getpid()))
            elif op == "sleep":       # chaos/test hook: a wedged worker
                time.sleep(msg[1])
                conn.send(("ok",))
            elif op == "close":
                conn.send(("ok",))
                break
            else:
                conn.send(("err", "ValueError", f"unknown op {op!r}"))
        except Exception as exc:     # reply, never kill the loop
            errors += 1
            try:
                conn.send(("err", type(exc).__name__, str(exc)))
            except (BrokenPipeError, OSError):
                break
    for _, closer in segments.values():
        try:
            closer()
        except BufferError:
            pass
    conn.close()


# ---------------------------------------------------------------------------
# Parent-side worker endpoint
# ---------------------------------------------------------------------------
class WorkerHandle:
    """Request/reply endpoint for one worker process.

    One request is in flight per worker at a time (the lock covers
    send → reply), which matches the backend's region-affinity model.
    Liveness is checked while waiting: a dead worker raises
    :class:`WorkerCrashed` within ~:data:`_POLL_SECONDS`, a deadline
    overrun kills the worker and raises :class:`WorkerTimeout` — both
    surface as breaker failures on the serving path, so a lost worker
    quarantines its regions instead of hanging ``drain``.

    ``last_samples`` caches the worker's most recent obs samples; a
    crashed worker keeps contributing its last-known counters to the
    parent registry, preserving exact aggregates.
    """

    def __init__(self, index: int, ctx, request_timeout: float = 60.0):
        self.index = index
        self.request_timeout = request_timeout
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(target=worker_main,
                                args=(child_conn, index),
                                name=f"repro-worker-{index}", daemon=True)
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn
        self.lock = threading.Lock()
        self.dead: str | None = None
        self.last_samples: list = []
        self.requests = 0

    @property
    def alive(self) -> bool:
        return self.dead is None and self.proc.is_alive()

    def _mark_dead(self, reason: str, kill: bool = False) -> None:
        self.dead = reason
        if kill:
            try:
                self.proc.kill()
            except Exception:
                pass
        self.proc.join(timeout=1.0)

    def request(self, msg, timeout: float | None = None):
        """Send ``msg`` and await the reply; raises on crash/timeout."""
        deadline = time.monotonic() + (timeout if timeout is not None
                                       else self.request_timeout)
        with self.lock:
            if self.dead is not None:
                raise WorkerCrashed(
                    f"worker {self.index} is dead ({self.dead})")
            try:
                self.conn.send(msg)
            except (BrokenPipeError, OSError) as exc:
                self._mark_dead(f"send failed: {exc}")
                raise WorkerCrashed(
                    f"worker {self.index} pipe broke on send") from exc
            while True:
                try:
                    if self.conn.poll(_POLL_SECONDS):
                        break
                except (BrokenPipeError, OSError) as exc:
                    self._mark_dead(f"poll failed: {exc}")
                    raise WorkerCrashed(
                        f"worker {self.index} pipe broke") from exc
                if not self.proc.is_alive():
                    # A final drain of the pipe: the worker may have
                    # replied and exited between polls.
                    if self.conn.poll(0):
                        break
                    self._mark_dead("process died")
                    raise WorkerCrashed(
                        f"worker {self.index} died mid-request "
                        f"(exitcode {self.proc.exitcode})")
                if time.monotonic() > deadline:
                    self._mark_dead("request timeout", kill=True)
                    raise WorkerTimeout(
                        f"worker {self.index} exceeded "
                        f"{timeout or self.request_timeout}s; killed")
            try:
                reply = self.conn.recv()
            except (EOFError, OSError) as exc:
                self._mark_dead(f"recv failed: {exc}")
                raise WorkerCrashed(
                    f"worker {self.index} died mid-reply") from exc
            self.requests += 1
        if reply[0] == "err":
            raise WorkerError(f"worker {self.index}: {reply[1]}: {reply[2]}")
        return reply

    def pull_samples(self) -> list:
        """Refresh (best-effort) and return the worker's obs samples."""
        if self.alive:
            try:
                self.last_samples = self.request(("counters",))[1]
            except (WorkerCrashed, WorkerTimeout, WorkerError):
                pass
        return self.last_samples

    def close(self, timeout: float = 2.0) -> None:
        """Graceful stop, escalating to kill.  Idempotent."""
        if self.dead is None and self.proc.is_alive():
            try:
                self.request(("close",), timeout=timeout)
            except (WorkerCrashed, WorkerTimeout, WorkerError):
                pass
        self.dead = self.dead or "closed"
        self.proc.join(timeout=timeout)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=timeout)
        try:
            self.conn.close()
        except OSError:
            pass

    def __repr__(self):
        state = self.dead or ("alive" if self.proc.is_alive() else "exited")
        return f"WorkerHandle(index={self.index}, {state})"


# ---------------------------------------------------------------------------
# Engine adapters (parent side)
# ---------------------------------------------------------------------------
class RemoteEngineClient:
    """Executes engine forwards in a worker via the slab protocol.

    One client per adopted region (clients sharing a worker serialize
    on its handle lock).  ``transport="pickle"`` ships arrays through
    the pipe instead — the baseline leg of the IPC-overhead benchmark.
    """

    def __init__(self, handle: WorkerHandle, *, slots: int = 4,
                 min_slot_floats: int = _MIN_SLOT_FLOATS,
                 transport: str = "shm", timeout: float | None = None,
                 invalidate_hook=None):
        if transport not in ("shm", "pickle"):
            raise ValueError(f"unknown transport {transport!r}")
        self.handle = handle
        self.slots = slots
        self.min_slot_floats = min_slot_floats
        self.transport = transport
        self.timeout = timeout
        #: Broadcast invalidations pool-wide (set by the backend so a
        #: hot-swap reaches every worker, not just this client's).
        self.invalidate_hook = invalidate_hook
        self._ring: SlabRing | None = None
        self.requests = 0
        self.busy_seconds = 0.0      # worker CPU seconds on our behalf
        self.pickle_fallbacks = 0    # oversized outputs that pickled
        self.bytes_shipped = 0       # payload bytes in + out (shm path)

    def _ensure_ring(self, floats_needed: int) -> SlabRing:
        ring = self._ring
        if ring is not None and ring.slot_floats >= floats_needed:
            return ring
        grown = max(floats_needed, self.min_slot_floats,
                    2 * ring.slot_floats if ring is not None else 0)
        if ring is not None:
            ring.close()             # affinity: no leases outstanding
        ring = self._ring = SlabRing(grown, slots=self.slots)
        return ring

    def infer(self, model_path, inputs, dtype=None) -> tuple:
        """One remote forward; returns ``(outputs, timing dict)``.

        ``dtype=np.float32`` negotiates the narrow wire format: inputs
        ship (and outputs return) as float32 in the same float64-sized
        slab slots, halving the bytes crossing the process boundary,
        and the worker serves its narrowed compiled plan.
        """
        dt = np.dtype(dtype) if dtype is not None else np.float64
        x = np.ascontiguousarray(np.asarray(inputs, dtype=dt))
        if self.transport == "pickle":
            msg = ("infer_pickle", str(model_path), x) \
                if dt == np.float64 else \
                ("infer_pickle", str(model_path), x, dt.name)
            reply = self.handle.request(msg, timeout=self.timeout)
            out = reply[1]
        else:
            # Ring capacity is addressed in float64 words; round the
            # payload up so narrow dtypes pack without spilling.
            ring = self._ensure_ring((x.nbytes + 7) // 8)
            slot = ring.lease(self.timeout)
            view = ring.slot(slot)
            try:
                tview = view if dt == np.float64 else view.view(dt)
                tview[:x.size] = x.reshape(-1)
                msg = ("infer", str(model_path), ring.name,
                       slot * ring.slot_floats, ring.slot_floats, x.shape)
                if dt != np.float64:
                    msg = msg + (dt.name,)
                reply = self.handle.request(msg, timeout=self.timeout)
                if reply[0] == "big":
                    out = reply[1]
                    self.pickle_fallbacks += 1
                else:
                    shape = reply[1]
                    out = np.array(
                        tview[:int(np.prod(shape))]).reshape(shape)
                self.bytes_shipped += x.nbytes + out.nbytes
            finally:
                # Drop the slab view before releasing: a raised
                # WorkerCrashed keeps this frame alive via its
                # traceback, and a lingering view would pin the
                # segment mapping past ring.close().
                view = tview = None
                ring.release(slot)
        timing, busy = reply[2], reply[3]
        self.requests += 1
        self.busy_seconds += busy
        # Parent-side SURROGATE fault seam: the worker ran a clean
        # forward, but injected faults must still poison/raise here so
        # the resilience harness exercises process backends.
        fault = _faults.fire(_faults.SURROGATE)
        if fault is not None:
            out = _faults.apply_surrogate_fault(fault, out)
        return out, dict(timing)

    def invalidate(self, model_path) -> None:
        """Drop the model from worker caches and await the ack(s)."""
        if self.invalidate_hook is not None:
            self.invalidate_hook(model_path)
        else:
            self.handle.request(
                ("invalidate",
                 None if model_path is None else str(model_path)),
                timeout=self.timeout)

    def warmup(self, model_path) -> None:
        self.handle.request(("warmup", str(model_path)),
                            timeout=self.timeout)

    def close(self) -> None:
        if self._ring is not None:
            self._ring.close()
            self._ring = None


class _WorkerModelCache(ModelCache):
    """A model cache whose invalidations broadcast to worker processes.

    ``hot_swap_model`` calls ``engine.cache.invalidate(path)`` then
    ``engine.warmup(path)``; with this cache both are synchronous
    worker round trips, so by the time the swap returns — and before
    the retrain loop resets the arbiter's stats — every worker has
    acked dropping the old weights.
    """

    def __init__(self, client: RemoteEngineClient):
        super().__init__()
        self._client = client

    def invalidate(self, path) -> bool:
        dropped = super().invalidate(path)
        self._client.invalidate(path)
        return dropped

    def clear(self) -> None:
        super().clear()
        self._client.invalidate(None)


class ProcessInferenceEngine(InferenceEngine):
    """Engine whose forward runs in a worker process (immediate path).

    Non-batched regions keep their invocation semantics — notably
    auto-regressive loops, which must not gain deferred delivery —
    only the forward crosses the process boundary.
    """

    def __init__(self, client: RemoteEngineClient, device=None):
        super().__init__(device=device, cache=_WorkerModelCache(client))
        self.client = client

    def infer(self, model_path, inputs, dtype=None):
        out, timing = self.client.infer(model_path, inputs, dtype=dtype)
        self.last_timing = timing
        return out

    def warmup(self, model_path, dtype=None):
        self.client.warmup(model_path)
        return None


class ProcessBatchedInferenceEngine(BatchedInferenceEngine):
    """Batched engine whose fused flush forward runs in a worker.

    Queueing, flush triggers, and scatter-back delivery stay in the
    parent (on the region's affinity thread); only the one fused
    ``(B, *features)`` forward ships across — via the slab ring, so
    batching amortizes the IPC round trip exactly like it amortizes
    the simulated transfer cost.
    """

    def __init__(self, client: RemoteEngineClient, device=None,
                 use_compiled: bool = True, max_batch_rows: int = 256):
        super().__init__(device=device, cache=_WorkerModelCache(client),
                         use_compiled=use_compiled,
                         max_batch_rows=max_batch_rows)
        self.client = client

    def _flush_forward(self, model_path, batch, dtype=None):
        out, timing = self.client.infer(model_path, batch, dtype=dtype)
        self.last_timing = timing
        return out

    def warmup(self, model_path, dtype=None):
        self.client.warmup(model_path)
        return None
