"""Online retraining: watch the training DB, retrain, hot-swap.

Closes the last gap in the adaptive loop: PR-2's drift-burst policy
refreshes the training database with rows from the drifted
distribution, but retraining stayed offline (``examples/adaptive_qos``
did it by hand).  :class:`RetrainWorker` watches each registered
region's database for growth, retrains a fresh surrogate through the
existing :mod:`repro.nn.training` stack, and **hot-swaps** the model
file — written to a sibling temp path and moved into place with
``os.replace``, so readers only ever see the old file or the new one.
Engines are then told to drop their cached model
(:meth:`~repro.runtime.infer.ModelCache.invalidate`) and re-warm; the
engine's compiled-plan staleness check handles the rebind, so serving
never stops.

The worker runs either synchronously (:meth:`poll`, used by tests and
deterministic benchmarks) or as a daemon thread (:meth:`start` /
:meth:`stop`); ``stop`` performs one final poll so any refresh that
landed during shutdown is still honored.

Retraining rides the serving critical loop (the worker shares the
process, and under the GIL epoch time is serving jitter), so the
:class:`~repro.nn.Trainer` it builds trains through the compiled fast
path (:mod:`repro.nn.compile_train`) by default — pass
``trainer_kwargs=dict(compiled=False)`` to force the graph path.
Optional ``recency_half_life`` weights the refreshed DB toward recent
rows for faster adaptation under sustained drift.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from pathlib import Path

import numpy as np

from ..h5 import File
from ..nn import Trainer, load_model, save_model
from ..nn.training import train_val_split
from ..resilience import faults as _faults
from ..resilience.primitives import RetryPolicy, run_with_timeout

__all__ = ["RetrainSpec", "RetrainEvent", "RetrainWorker", "HotSwapError",
           "hot_swap_model", "db_row_count", "recency_weighted_indices"]

logger = logging.getLogger("repro.serving.retrain")


class HotSwapError(RuntimeError):
    """A candidate model failed verification at hot-swap time; the
    deployed model file was left untouched (rollback)."""


def recency_weighted_indices(indices, n_total: int, half_life: float,
                             rng: np.random.Generator) -> np.ndarray:
    """Bootstrap ``indices`` with age-decayed weights (newest row age 0).

    Rows are stored in insertion order, so after a drift burst the
    newest rows come from the drifted distribution.  ``indices`` are
    row positions in a database of ``n_total`` rows; each row's weight
    halves every ``half_life`` rows of age.  Sampling ``len(indices)``
    of them with replacement yields a partition dominated by recent
    rows while old rows still contribute — faster adaptation under
    sustained drift without forgetting the stationary regime outright.

    Callers must bootstrap the training and validation partitions
    *separately* (after splitting): resampling before the split would
    duplicate rows across both partitions and turn the validation loss
    into a memorization probe.
    """
    if half_life <= 0:
        raise ValueError(f"half_life must be positive: {half_life}")
    indices = np.asarray(indices)
    age = (n_total - 1) - indices
    weights = np.exp2(-age / half_life)
    return rng.choice(indices, size=indices.size, replace=True,
                      p=weights / weights.sum())


def db_row_count(db_path, region_name: str) -> int:
    """Rows currently collected for ``region_name`` (0 when absent)."""
    fault = _faults.fire(_faults.DB_READ, region=region_name)
    if fault is not None:
        # DB_READ fault seam: a stale replica read (report old rows) or
        # an outright failed read.
        if fault.kind == "stale":
            return int(fault.payload.get("rows", 0))
        if fault.kind == "raise":
            raise _faults.InjectedFault(
                f"injected db read failure #{fault.index}")
    db_path = Path(db_path)
    if not db_path.exists():
        return 0
    with File(db_path, "r") as fh:
        if region_name not in fh:
            return 0
        group = fh[region_name]
        if "inputs" not in group:
            return 0
        return int(group["inputs"].shape[0])


def hot_swap_model(model, model_path, engines=(),
                   verify_inputs=None) -> Path:
    """Atomically replace ``model_path`` with ``model``; refresh engines.

    The swap is **verified**: the candidate is serialized to a sibling
    temp file, read back (which checks the format's checksum footer),
    and — when ``verify_inputs`` is given — forward-checked on that
    holdout slice for finite outputs.  Only a candidate that passes
    reaches ``os.replace`` (atomic on POSIX); any verification failure
    deletes the temp file and raises :class:`HotSwapError` with the
    deployed model untouched — rollback is simply not swapping.

    After the replace, every engine's model cache entry for the path is
    invalidated and re-warmed so the next inference runs the new
    weights with a freshly compiled plan.
    """
    from .. import obs
    model_path = Path(model_path)
    with obs.tracer().span("hot_swap", model=model_path.name):
        return _hot_swap_model(model, model_path, engines, verify_inputs)


def _hot_swap_model(model, model_path, engines, verify_inputs) -> Path:
    tmp_path = model_path.with_name(model_path.name + ".swap")
    save_model(model, tmp_path)
    # HOT_SWAP fault seam: the candidate file arrives corrupt/truncated
    # (torn replication, bad disk) between serialize and verify.
    fault = _faults.fire(_faults.HOT_SWAP, path=str(tmp_path))
    if fault is not None:
        _faults.apply_file_fault(fault, tmp_path)
    try:
        candidate = load_model(tmp_path)
        if verify_inputs is not None:
            probe = candidate.forward_compiled(
                np.ascontiguousarray(verify_inputs))
            if not np.all(np.isfinite(probe)):
                raise HotSwapError(
                    f"{model_path}: candidate emitted non-finite outputs "
                    "on the verification slice")
    except HotSwapError:
        tmp_path.unlink(missing_ok=True)
        raise
    except Exception as exc:
        tmp_path.unlink(missing_ok=True)
        raise HotSwapError(
            f"{model_path}: candidate failed verification, keeping "
            f"deployed model ({type(exc).__name__}: {exc})") from exc
    os.replace(tmp_path, model_path)
    seen = set()
    for engine in engines:
        if engine is None or id(engine) in seen:
            continue
        seen.add(id(engine))
        engine.cache.invalidate(model_path)
        engine.warmup(model_path)
    return model_path


class RetrainSpec:
    """How to retrain one region's surrogate.

    ``build(x_train, y_train) -> model`` constructs a fresh model from
    the refreshed training split (harnesses provide this via
    ``make_builder``, which bakes standardization stats from exactly
    that split); ``trainer_kwargs`` parameterize the
    :class:`~repro.nn.Trainer`.
    """

    __slots__ = ("name", "db_path", "model_path", "build", "trainer_kwargs",
                 "min_new_rows", "val_fraction", "engines", "qos",
                 "trained_rows", "recency_half_life", "warm_start",
                 "require_compiled", "opt_state", "compiled_last",
                 "consecutive_failures")

    def __init__(self, name, db_path, model_path, build,
                 trainer_kwargs=None, min_new_rows: int = 32,
                 val_fraction: float = 0.2, engines=(), qos=None,
                 recency_half_life: float | None = None,
                 warm_start: bool = False, require_compiled: bool = False):
        self.name = name
        self.db_path = Path(db_path)
        self.model_path = Path(model_path)
        self.build = build
        self.trainer_kwargs = dict(trainer_kwargs or {})
        self.min_new_rows = min_new_rows
        self.val_fraction = val_fraction
        self.engines = tuple(engines)
        self.qos = qos
        self.trained_rows = 0
        #: When set, retraining bootstraps the DB rows with weights
        #: halving every ``recency_half_life`` rows of age, so a
        #: drift-refreshed tail dominates the next surrogate.
        self.recency_half_life = recency_half_life
        #: Carry fused-optimizer moments from one retrain into the
        #: next (applied only when the rebuilt model's plan fingerprint
        #: matches — a changed architecture starts cold automatically).
        self.warm_start = warm_start
        #: Fail loudly when a retrain silently falls back to the
        #: pure-Python graph path — sequence/conv apps sit on the
        #: serving critical path and must train compiled.
        self.require_compiled = require_compiled
        #: Fused-optimizer state of the last retrain (when warm_start).
        self.opt_state = None
        #: Whether the last retrain ran on the compiled fast path.
        self.compiled_last: bool | None = None
        #: Failed retrain attempts since the last success (drives the
        #: worker's once-per-transition degradation/recovery logging).
        self.consecutive_failures = 0


class RetrainEvent:
    """One completed retrain/hot-swap, for reporting.

    ``compiled`` says whether the trainer ran on the compiled fast path
    (``fallback`` carries the reason when it did not) — the coverage
    signal operators watch now that sequence/conv surrogates lower too.
    """

    __slots__ = ("region", "rows", "new_rows", "val_loss", "seconds",
                 "compiled", "fallback")

    def __init__(self, region, rows, new_rows, val_loss, seconds,
                 compiled=True, fallback=None):
        self.region = region
        self.rows = rows
        self.new_rows = new_rows
        self.val_loss = val_loss
        self.seconds = seconds
        self.compiled = compiled
        self.fallback = fallback

    def as_dict(self) -> dict:
        return {"region": self.region, "rows": self.rows,
                "new_rows": self.new_rows, "val_loss": self.val_loss,
                "seconds": self.seconds, "compiled": self.compiled,
                "fallback": self.fallback}

    def __repr__(self):
        return (f"RetrainEvent({self.region!r}, rows={self.rows}, "
                f"new_rows={self.new_rows}, val_loss={self.val_loss:.3g}, "
                f"compiled={self.compiled})")


class RetrainWorker:
    """Background trainer keyed on training-database growth.

    Register regions with :meth:`watch`; each :meth:`poll` compares the
    database row count against the count at the last (re)train and,
    when at least ``min_new_rows`` fresh rows arrived — a drift burst's
    signature — retrains and hot-swaps.  ``poll`` is safe to call both
    from the daemon thread and directly (a lock serializes cycles).
    """

    #: Default cap on :attr:`errors` (oldest entries dropped first).
    MAX_ERRORS = 100

    def __init__(self, seed: int = 0, retry: RetryPolicy | None = None,
                 job_timeout: float | None = None,
                 max_errors: int | None = None,
                 verify_swap: bool = True):
        self.seed = seed
        #: Backoff policy around each region's train step (``None``:
        #: one attempt).  Transient trainer crashes — injected or
        #: organic — are retried instead of abandoning the refresh.
        self.retry = retry
        #: Watchdog deadline (seconds) on each train step; a hung
        #: trainer is abandoned past it so the poll cycle (and the
        #: worker lock every caller serializes on) stays bounded.
        self.job_timeout = job_timeout
        self.max_errors = self.MAX_ERRORS if max_errors is None \
            else max_errors
        #: Forward-check each retrained candidate on a training-split
        #: holdout slice before the swap (see :func:`hot_swap_model`).
        self.verify_swap = verify_swap
        self._specs: dict[str, RetrainSpec] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.events: list[RetrainEvent] = []
        #: Errors swallowed by the daemon loop (e.g. a poll that read a
        #: mid-write DB), kept so operators can see the thread is
        #: degraded rather than silently dead.  Bounded to
        #: ``max_errors`` — a region failing every tick for days must
        #: not grow the list without limit.
        self.errors: list[str] = []

    # -- registration ----------------------------------------------------
    def watch(self, name, db_path, model_path, build, *,
              trainer_kwargs=None, min_new_rows: int = 32,
              val_fraction: float = 0.2, engines=(),
              qos=None, recency_half_life: float | None = None,
              warm_start: bool = False,
              require_compiled: bool = False) -> RetrainSpec:
        """Track one region.  The current DB row count becomes the
        baseline, so only *future* refreshes trigger retraining.

        ``qos`` is the controller serving the region (e.g. the server's
        :class:`~repro.serving.QoSArbiter`): after a hot-swap its
        rolling stats for the region are reset, because they estimate
        the error of weights that no longer exist.

        ``recency_half_life`` (rows) enables age-decayed bootstrap
        sampling of the training DB before each retrain: a refreshed
        tail of drifted rows dominates the new surrogate instead of
        being diluted by the full stationary history.

        ``warm_start`` carries the fused optimizer's flat moments from
        each retrain into the next (keyed on the plan fingerprint, so
        an architecture change starts cold); ``require_compiled`` makes
        a silent graph-path fallback an error instead of a slow retrain
        — use it for the sequence/conv apps whose whole reason to
        retrain in-process is the compiled path.
        """
        spec = RetrainSpec(name, db_path, model_path, build,
                           trainer_kwargs=trainer_kwargs,
                           min_new_rows=min_new_rows,
                           val_fraction=val_fraction, engines=engines,
                           qos=qos, recency_half_life=recency_half_life,
                           warm_start=warm_start,
                           require_compiled=require_compiled)
        spec.trained_rows = db_row_count(db_path, name)
        with self._lock:
            self._specs[name] = spec
        return spec

    @property
    def watched(self) -> tuple:
        return tuple(self._specs)

    # -- error bookkeeping -----------------------------------------------
    def _append_error(self, message: str) -> None:
        self.errors.append(message)
        if len(self.errors) > self.max_errors:
            del self.errors[:len(self.errors) - self.max_errors]

    def _record_failure(self, spec: RetrainSpec, exc: BaseException) -> None:
        """One failed retrain attempt for ``spec`` (after retries)."""
        spec.consecutive_failures += 1
        self._append_error(
            f"{spec.name}: {type(exc).__name__}: {exc}")
        if spec.consecutive_failures == 1:
            # Log the healthy -> failing transition once, not per tick.
            logger.warning("retrain for %r failing (%s: %s); serving "
                           "continues on the deployed model", spec.name,
                           type(exc).__name__, exc)

    def _note_success(self, spec: RetrainSpec) -> None:
        if spec.consecutive_failures:
            logger.warning("retrain for %r recovered after %d failed "
                           "attempt(s)", spec.name,
                           spec.consecutive_failures)
            spec.consecutive_failures = 0

    # -- retraining ------------------------------------------------------
    def _train_step(self, spec: RetrainSpec, rng_seed: int):
        """One training attempt: load, split, build, fit.

        This is the retried/watchdogged unit; the TRAINER fault seam
        fires at its start so injected crashes and hangs behave like a
        trainer that died mid-fit (each retry re-fires the seam).
        """
        fault = _faults.fire(_faults.TRAINER, region=spec.name)
        if fault is not None:
            _faults.apply_trainer_fault(fault)
        from ..runtime.collect import load_training_data
        x, y, _t = load_training_data(spec.db_path, spec.name)
        rng = np.random.default_rng(rng_seed)
        if spec.recency_half_life is not None and len(x) > 1:
            # Split on original row indices first, then bootstrap each
            # partition by row age independently — no row can land in
            # both train and validation, and the validation loss that
            # drives early stopping reflects the same recency-weighted
            # regime the surrogate is trained for.
            train_idx, val_idx = train_val_split(
                x, y, spec.val_fraction, rng, return_indices=True)
            n = len(x)
            train_idx = recency_weighted_indices(
                train_idx, n, spec.recency_half_life, rng)
            val_idx = recency_weighted_indices(
                val_idx, n, spec.recency_half_life, rng)
            xt, yt = x[train_idx], y[train_idx]
            xv, yv = x[val_idx], y[val_idx]
        else:
            (xt, yt), (xv, yv) = train_val_split(x, y, spec.val_fraction,
                                                 rng)
        model = spec.build(xt, yt)
        trainer = Trainer(model, seed=rng_seed,
                          warm_start=spec.opt_state if spec.warm_start
                          else None, **spec.trainer_kwargs)
        result = trainer.fit(xt, yt, xv, yv)
        return model, trainer, result, xv

    def _retrain(self, spec: RetrainSpec, rows: int) -> RetrainEvent:
        """One retrain + hot-swap, recorded as a trace span (the
        nested ``hot_swap`` span lands under it)."""
        from .. import obs
        with obs.tracer().span("retrain", region=spec.name) as span:
            event = self._retrain_inner(spec, rows)
            if span is not None:
                span.attrs.update(rows=event.rows, new_rows=event.new_rows,
                                  val_loss=event.val_loss,
                                  compiled=event.compiled)
        if obs.is_enabled():
            obs.metrics().counter("retrains", region=spec.name).inc()
        return event

    def _retrain_inner(self, spec: RetrainSpec, rows: int) -> RetrainEvent:
        start = time.perf_counter()
        rng_seed = self.seed + 31 * (len(self.events) + 1)

        def attempt():
            return run_with_timeout(
                lambda: self._train_step(spec, rng_seed),
                self.job_timeout, name=f"retrain:{spec.name}")

        if self.retry is not None:
            model, trainer, result, xv = self.retry.run(
                attempt,
                on_retry=lambda n, exc: self._append_error(
                    f"{spec.name}: attempt {n} failed "
                    f"({type(exc).__name__}: {exc}); retrying"))
        else:
            model, trainer, result, xv = attempt()
        if spec.warm_start:
            spec.opt_state = trainer.optimizer_state()
        spec.compiled_last = trainer.compiled_active
        verify_inputs = xv[:32] if self.verify_swap and len(xv) else None
        hot_swap_model(model, spec.model_path, spec.engines,
                       verify_inputs=verify_inputs)
        if spec.qos is not None:
            # The rolling error stats describe the replaced weights;
            # drop them so the new model re-enters via warmup probes.
            spec.qos.reset_region(spec.name)
        event = RetrainEvent(spec.name, rows, rows - spec.trained_rows,
                             result.best_val_loss,
                             time.perf_counter() - start,
                             compiled=trainer.compiled_active,
                             fallback=trainer.compile_fallback)
        spec.trained_rows = rows
        self.events.append(event)
        self._note_success(spec)
        if spec.require_compiled and not trainer.compiled_active:
            # The retrained model was still swapped in (the graph path
            # is correct, just slow); surface the coverage break loudly
            # so the operator sees serving-latency jitter coming.
            self._append_error(
                f"{spec.name}: retrain fell back to the graph path "
                f"({trainer.compile_fallback})")
        return event

    def retrain_now(self, name: str) -> RetrainEvent:
        """Force one region's retrain regardless of DB growth.

        Raises when the region requires the compiled path and the
        retrain fell back (the swap still happened — the graph path is
        correct, just slow).
        """
        with self._lock:
            spec = self._specs[name]
            try:
                event = self._retrain(spec, db_row_count(spec.db_path,
                                                         spec.name))
            except Exception as exc:
                self._record_failure(spec, exc)
                raise
        if spec.require_compiled and not event.compiled:
            raise RuntimeError(
                f"{spec.name}: retrain fell back to the graph path "
                f"({event.fallback})")
        return event

    def poll(self) -> list:
        """One watch cycle: retrain every region whose DB grew enough.

        Per-spec failures are contained: one region's crashed DB read or
        exhausted-retries trainer lands in :attr:`errors` (and bumps its
        spec's ``consecutive_failures``) while the other due regions
        still retrain this tick.  ``trained_rows`` only advances on
        success, so a failed refresh is retried next cycle.  A
        ``require_compiled`` coverage break likewise lands in
        :attr:`errors` without aborting the cycle.
        """
        events = []
        with self._lock:
            for spec in self._specs.values():
                try:
                    rows = db_row_count(spec.db_path, spec.name)
                    if rows - spec.trained_rows >= spec.min_new_rows:
                        events.append(self._retrain(spec, rows))
                except Exception as exc:
                    self._record_failure(spec, exc)
        return events

    # -- background thread -----------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, interval: float = 1.0) -> None:
        """Poll every ``interval`` seconds on a daemon thread.

        A failing cycle — e.g. a poll that catches the training DB
        mid-rewrite, or a transient trainer error — is recorded in
        :attr:`errors` and the loop keeps going; one bad tick must not
        end online retraining for the life of the server.
        """
        if self.running:
            raise RuntimeError("RetrainWorker already running")
        self._stop.clear()

        def loop():
            while not self._stop.wait(interval):
                try:
                    self.poll()
                except Exception as exc:
                    self._append_error(f"{type(exc).__name__}: {exc}")

        self._thread = threading.Thread(target=loop, name="retrain-worker",
                                        daemon=True)
        self._thread.start()

    def stop(self, timeout: float | None = 30.0) -> list:
        """Stop the thread; a final poll catches late DB refreshes.

        The join is bounded by ``timeout``: a retrain hung past the
        watchdog must not hang shutdown too.  When the thread fails to
        join, it is abandoned (daemon — it dies with the process), the
        condition lands in :attr:`errors`, and the final poll is
        skipped: the hung cycle still holds the worker lock.
        """
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout)
            if self._thread.is_alive():
                self._append_error(
                    f"stop: retrain thread failed to join within "
                    f"{timeout:g}s; abandoning it")
                self._thread = None
                return []
            self._thread = None
        return self.poll()

    def snapshot(self) -> dict:
        return {
            "watched": {name: {"trained_rows": spec.trained_rows,
                               "min_new_rows": spec.min_new_rows,
                               "recency_half_life": spec.recency_half_life,
                               "warm_start": spec.warm_start,
                               "require_compiled": spec.require_compiled,
                               "compiled_last": spec.compiled_last,
                               "consecutive_failures":
                                   spec.consecutive_failures,
                               "db_path": str(spec.db_path),
                               "model_path": str(spec.model_path)}
                        for name, spec in self._specs.items()},
            "retrains": [e.as_dict() for e in self.events],
            "errors": list(self.errors),
            "retry": None if self.retry is None else {
                "max_attempts": self.retry.max_attempts,
                "base_delay": self.retry.base_delay,
                "max_delay": self.retry.max_delay},
            "job_timeout": self.job_timeout,
            "running": self.running,
        }
