"""``repro.serving`` — the unified multi-region serving layer.

One :class:`RegionServer` owns a set of
:class:`~repro.runtime.region.ApproxRegion`\\ s, schedules their
invocations through a pluggable execution backend (inline
:class:`SerialBackend`, or :class:`ThreadPoolBackend` with per-region
batched-engine affinity), and hosts a single :class:`QoSArbiter` that
splits one global error budget across every region — replacing the
one-controller-per-harness wiring of PR 2.  A :class:`RetrainWorker`
closes the adaptive loop online: drift bursts refresh a region's
training database, the worker retrains in the background, and the new
model file is hot-swapped atomically under the live server.
"""

from .arbiter import QoSArbiter
from .backends import (ExecutionBackend, ProcessPoolBackend, SerialBackend,
                       ThreadPoolBackend)
from .retrain import (HotSwapError, RetrainEvent, RetrainSpec,
                      RetrainWorker, db_row_count, hot_swap_model,
                      recency_weighted_indices)
from .server import RegionServer, ServedRegion
from .shm import (ProcessBatchedInferenceEngine, ProcessInferenceEngine,
                  RemoteEngineClient, SlabRing, WorkerCrashed, WorkerError,
                  WorkerHandle, WorkerTimeout)

__all__ = [
    "RegionServer", "ServedRegion",
    "ExecutionBackend", "SerialBackend", "ThreadPoolBackend",
    "ProcessPoolBackend",
    "SlabRing", "WorkerHandle", "RemoteEngineClient",
    "ProcessInferenceEngine", "ProcessBatchedInferenceEngine",
    "WorkerCrashed", "WorkerTimeout", "WorkerError",
    "QoSArbiter",
    "RetrainWorker", "RetrainSpec", "RetrainEvent",
    "HotSwapError",
    "hot_swap_model", "db_row_count", "recency_weighted_indices",
]
