"""Execution backends: how a :class:`RegionServer` runs invocations.

A backend turns a served region's invocation into actual execution.
Two are provided:

* :class:`SerialBackend` — runs every invocation inline on the
  caller's thread; zero scheduling overhead, so the single-region
  QoS-off latency matches a direct region call.  The default.
* :class:`ThreadPoolBackend` — one dedicated worker thread per region
  (*batched-engine affinity*): a region's invocations, flushes, and
  deferred scatter-backs all execute on its own thread, so the
  per-region :class:`~repro.runtime.batch.BatchedInferenceEngine`
  queue is only ever touched from one thread while distinct regions
  serve concurrently.  Regions scheduled on this backend must not
  share an engine or mutable state with each other.

The backend contract is three methods: ``submit`` (run one callable
for a region), ``drain`` (flush a set of regions and wait until their
queues are empty), and ``close``.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor

__all__ = ["ExecutionBackend", "SerialBackend", "ThreadPoolBackend"]


class ExecutionBackend:
    """Scheduling strategy contract for :class:`RegionServer`."""

    def submit(self, served, fn, args=(), kwargs=None):
        """Run ``fn(*args, **kwargs)`` for ``served``'s region.

        Returns the call's result directly (synchronous backends) or a
        :class:`concurrent.futures.Future` resolving to it.
        """
        raise NotImplementedError

    def drain(self, served_list) -> None:
        """Flush every region in ``served_list`` and wait for quiescence."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker threads)."""


class SerialBackend(ExecutionBackend):
    """Inline execution on the caller's thread (the latency baseline)."""

    def submit(self, served, fn, args=(), kwargs=None):
        return fn(*args, **(kwargs or {}))

    def drain(self, served_list) -> None:
        for served in served_list:
            served.region.flush()


class ThreadPoolBackend(ExecutionBackend):
    """One single-thread executor per region: cross-region parallelism
    with strict per-region ordering.

    Affinity is what makes batching sound under concurrency: a region's
    invocation order (and therefore its batched queue and deferred
    scatter-backs) is preserved because all of them run on the same
    worker, while different regions' surrogates execute in parallel.
    ``submit`` returns a :class:`Future`; ``drain`` schedules a flush
    on each region's own worker — behind any queued invocations — and
    blocks until all complete, re-raising the first failure.
    """

    def __init__(self):
        self._executors: dict[str, ThreadPoolExecutor] = {}
        self._lock = threading.Lock()
        self._closed = False

    def _executor(self, name: str) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("backend is closed")
            ex = self._executors.get(name)
            if ex is None:
                ex = self._executors[name] = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"serve-{name}")
            return ex

    def submit(self, served, fn, args=(), kwargs=None) -> Future:
        return self._executor(served.name).submit(fn, *args, **(kwargs or {}))

    def drain(self, served_list) -> None:
        futures = [self.submit(s, s.region.flush) for s in served_list]
        for future in futures:
            future.result()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            executors = list(self._executors.values())
            self._executors.clear()
        for ex in executors:
            ex.shutdown(wait=True)
