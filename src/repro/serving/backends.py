"""Execution backends: how a :class:`RegionServer` runs invocations.

A backend turns a served region's invocation into actual execution.
Three are provided:

* :class:`SerialBackend` — runs every invocation inline on the
  caller's thread; zero scheduling overhead, so the single-region
  QoS-off latency matches a direct region call.  The default.
* :class:`ThreadPoolBackend` — one dedicated worker thread per region
  (*batched-engine affinity*): a region's invocations, flushes, and
  deferred scatter-backs all execute on its own thread, so the
  per-region :class:`~repro.runtime.batch.BatchedInferenceEngine`
  queue is only ever touched from one thread while distinct regions
  serve concurrently.  Regions scheduled on this backend must not
  share an engine or mutable state with each other.  GIL-bound: plan
  execution still serializes on the interpreter lock.
* :class:`ProcessPoolBackend` — the thread backend's affinity model
  with the forward pass moved into worker **processes**: each worker
  owns a private :class:`~repro.runtime.infer.InferenceEngine` (model
  + compiled-plan caches), tensors cross via shared-memory slab rings
  (:mod:`repro.serving.shm`), and adopted regions' engines are
  swapped for process-aware adapters.  Cross-region parallelism is
  real — distinct regions' plans execute on distinct cores.

The backend contract is three methods plus one hook: ``submit`` (run
one callable for a region), ``drain`` (flush a set of regions and wait
until their queues are empty), ``close`` (idempotent; ``submit`` and
``drain`` afterwards raise ``RuntimeError("backend is closed")``), and
optional ``adopt(served)`` (called by ``RegionServer.register`` so a
backend can take ownership of a region's execution resources).
``drain`` is atomic with respect to a concurrent ``close``: it either
schedules every flush or raises without scheduling any.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from concurrent.futures import Future, ThreadPoolExecutor

from .. import obs
from ..runtime.batch import BatchedInferenceEngine
from .shm import (ProcessBatchedInferenceEngine, ProcessInferenceEngine,
                  RemoteEngineClient, WorkerCrashed, WorkerHandle,
                  WorkerTimeout)

__all__ = ["ExecutionBackend", "SerialBackend", "ThreadPoolBackend",
           "ProcessPoolBackend"]


class ExecutionBackend:
    """Scheduling strategy contract for :class:`RegionServer`."""

    def submit(self, served, fn, args=(), kwargs=None):
        """Run ``fn(*args, **kwargs)`` for ``served``'s region.

        Returns the call's result directly (synchronous backends) or a
        :class:`concurrent.futures.Future` resolving to it.  Raises
        ``RuntimeError`` once the backend is closed.
        """
        raise NotImplementedError

    def drain(self, served_list) -> None:
        """Flush every region in ``served_list`` and wait for quiescence.

        Atomic with a racing :meth:`close`: either every flush is
        scheduled (and close waits for them) or none is and this
        raises ``RuntimeError("backend is closed")``.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (worker threads/processes).

        Idempotent; subsequent :meth:`submit`/:meth:`drain` raise.
        """

    def adopt(self, served) -> None:
        """Optional hook: take ownership of a newly registered region."""


class SerialBackend(ExecutionBackend):
    """Inline execution on the caller's thread (the latency baseline)."""

    def __init__(self):
        self._closed = False

    def submit(self, served, fn, args=(), kwargs=None):
        if self._closed:
            raise RuntimeError("backend is closed")
        return fn(*args, **(kwargs or {}))

    def drain(self, served_list) -> None:
        if self._closed:
            raise RuntimeError("backend is closed")
        for served in served_list:
            served.region.flush()

    def close(self) -> None:
        self._closed = True


class ThreadPoolBackend(ExecutionBackend):
    """One single-thread executor per region: cross-region parallelism
    with strict per-region ordering.

    Affinity is what makes batching sound under concurrency: a region's
    invocation order (and therefore its batched queue and deferred
    scatter-backs) is preserved because all of them run on the same
    worker, while different regions' surrogates execute in parallel.
    ``submit`` returns a :class:`Future`; ``drain`` schedules a flush
    on each region's own worker — behind any queued invocations — and
    blocks until all complete, re-raising the first failure.
    """

    def __init__(self):
        self._executors: dict[str, ThreadPoolExecutor] = {}
        self._lock = threading.Lock()
        self._closed = False

    def _executor_locked(self, name: str) -> ThreadPoolExecutor:
        ex = self._executors.get(name)
        if ex is None:
            ex = self._executors[name] = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"serve-{name}")
        return ex

    def _executor(self, name: str) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("backend is closed")
            return self._executor_locked(name)

    def submit(self, served, fn, args=(), kwargs=None) -> Future:
        return self._executor(served.name).submit(fn, *args, **(kwargs or {}))

    def drain(self, served_list) -> None:
        # Scheduling happens entirely under the lock so drain is atomic
        # with close(): a close that loses the race waits for these
        # flushes (executor shutdown drains queued work); one that wins
        # makes drain raise before *any* flush was scheduled — never a
        # "backend is closed" halfway through the list.
        with self._lock:
            if self._closed:
                raise RuntimeError("backend is closed")
            futures = [self._executor_locked(s.name).submit(s.region.flush)
                       for s in served_list]
        for future in futures:
            future.result()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            executors = list(self._executors.values())
            self._executors.clear()
        for ex in executors:
            ex.shutdown(wait=True)


class _Placement:
    """One adopted region: its worker and the engine it arrived with."""

    __slots__ = ("served", "handle", "client", "engine", "original")

    def __init__(self, served, handle, client, engine, original):
        self.served = served
        self.handle = handle
        self.client = client
        self.engine = engine
        self.original = original


class ProcessPoolBackend(ThreadPoolBackend):
    """Worker processes + shared-memory slabs: parallelism past the GIL.

    Structure: the inherited per-region affinity threads keep ordering
    and batching sound exactly as on :class:`ThreadPoolBackend`, but an
    adopted region's engine is swapped
    (:meth:`~repro.runtime.region.ApproxRegion.swap_engine`) for a
    process adapter whose forward runs in one of ``workers`` worker
    processes — placement is round-robin at adoption, so region groups
    spread across workers.  Tensors cross via a per-region
    :class:`~repro.serving.shm.SlabRing`; messages carry only segment
    names, offsets, and shapes.

    Lifecycle and failure: workers are spawned eagerly (before any
    serving thread exists, keeping fork safe); a crashed or wedged
    worker raises :class:`~repro.serving.shm.WorkerCrashed` /
    :class:`WorkerTimeout` into the invocation, which a region's
    circuit breaker converts into accurate-path fallback and
    eventually quarantine — ``drain`` never hangs on a lost worker.
    :meth:`close` restores every region's original engine, so the pool
    can be detached from a live server.

    Observability: the backend registers as a metrics-registry
    collector; worker-local counters/histograms are pulled at drain
    and snapshot time and folded into the parent registry (a dead
    worker keeps contributing its last-known samples — aggregates stay
    exact).  Hot-swap: a model invalidation broadcasts to every live
    worker and waits for each ack (see
    :class:`~repro.serving.shm._WorkerModelCache`).
    """

    def __init__(self, workers: int = 4, *, start_method: str | None = None,
                 request_timeout: float = 60.0, slab_slots: int = 4,
                 transport: str = "shm", registry=None):
        super().__init__()
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        ctx = mp.get_context(start_method)
        self.request_timeout = request_timeout
        self.slab_slots = slab_slots
        self.transport = transport
        self._handles = [WorkerHandle(i, ctx, request_timeout)
                         for i in range(workers)]
        self._placements: dict[str, _Placement] = {}
        self._adopt_lock = threading.RLock()
        self._registry = registry if registry is not None else obs.metrics()
        self._registry.register_collector(self)

    # -- placement / adoption --------------------------------------------
    @property
    def workers(self) -> int:
        return len(self._handles)

    def worker_for(self, name: str) -> int | None:
        """The worker index serving region ``name`` (None if unadopted)."""
        placement = self._placements.get(name)
        return placement.handle.index if placement is not None else None

    def client_for(self, name: str):
        """Region ``name``'s :class:`RemoteEngineClient` (None if
        unadopted).  Exposes per-region transport stats — request
        count, worker busy CPU seconds, pickle fallbacks — to the
        multiprocess benchmark without touching placement internals."""
        placement = self._placements.get(name)
        return placement.client if placement is not None else None

    def adopt(self, served) -> None:
        """Take over ``served``'s engine execution.  Idempotent.

        Builds a process adapter matching the region's engine kind —
        a batched region keeps deferred delivery (the fused flush
        forward ships to the worker), a non-batched one keeps
        immediate semantics (auto-regressive loops must not gain
        batching) — and swaps it in, remembering the original for
        :meth:`close` to restore.
        """
        with self._adopt_lock:
            if self._closed:
                raise RuntimeError("backend is closed")
            if served.name in self._placements:
                return
            handle = self._handles[len(self._placements)
                                   % len(self._handles)]
            original = served.region.engine
            client = RemoteEngineClient(
                handle, slots=self.slab_slots, transport=self.transport,
                timeout=self.request_timeout,
                invalidate_hook=self.invalidate_model)
            if isinstance(original, BatchedInferenceEngine):
                engine = ProcessBatchedInferenceEngine(
                    client, device=original.device,
                    use_compiled=original.use_compiled,
                    max_batch_rows=original.max_batch_rows)
            else:
                engine = ProcessInferenceEngine(client,
                                                device=original.device)
            served.region.swap_engine(engine)
            self._placements[served.name] = _Placement(
                served, handle, client, engine, original)

    def submit(self, served, fn, args=(), kwargs=None) -> Future:
        if served.name not in self._placements:
            # Lazy adoption: backends assigned to a live server (e.g. a
            # benchmark swapping ``server.backend``) see regions that
            # never went through ``register``.
            self.adopt(served)
        return super().submit(served, fn, args, kwargs)

    # -- hot-swap invalidation protocol ----------------------------------
    def invalidate_model(self, model_path) -> int:
        """Broadcast a model/plan-cache invalidation; await each ack.

        Returns the number of workers that acked.  Dead workers are
        skipped (their caches died with them); the caller — typically
        ``hot_swap_model`` via an adopted engine's cache — therefore
        knows every *live* worker dropped the old weights before the
        arbiter's stats are reset.
        """
        acked = 0
        path = None if model_path is None else str(model_path)
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                handle.request(("invalidate", path))
                acked += 1
            except (WorkerCrashed, WorkerTimeout):
                continue
        return acked

    # -- draining / lifecycle --------------------------------------------
    def drain(self, served_list) -> None:
        super().drain(served_list)
        # Post-quiescence sample pull: worker counters fold into the
        # parent registry exactly once per drain, with nothing in
        # flight to race them.
        for handle in self._handles:
            handle.pull_samples()

    def close(self) -> None:
        """Restore engines, stop workers, release slabs.  Idempotent."""
        with self._adopt_lock:
            placements = list(self._placements.values())
            self._placements.clear()
            already_closed = self._closed
        if not already_closed:
            # Quiesce the affinity threads first so no invocation is
            # mid-flight while engines are being swapped back.
            super().close()
        for placement in placements:
            try:
                placement.served.region.swap_engine(placement.original)
            except (WorkerCrashed, WorkerTimeout):
                # Dead worker: the flush of queued rows is lost; the
                # original engine is still restored below.
                placement.served.region._engine = placement.original
                placement.served.region._batched_engine = isinstance(
                    placement.original, BatchedInferenceEngine)
        for handle in self._handles:
            handle.pull_samples()    # final counter fold (best effort)
        for placement in placements:
            placement.client.close()
        for handle in self._handles:
            handle.close()

    # -- chaos/testing hook ----------------------------------------------
    def kill_worker(self, index: int) -> None:
        """Hard-kill one worker (crash-path testing)."""
        self._handles[index].proc.kill()
        self._handles[index].proc.join(timeout=2.0)

    # -- observability ----------------------------------------------------
    def collect(self) -> list:
        """Registry-collector hook: fold worker-local samples.

        Live workers are scraped on the spot; dead ones contribute
        their last pulled samples, so pool-wide counters never move
        backwards and stay exact across crashes.
        """
        samples = []
        for handle in self._handles:
            if not self._closed:
                handle.pull_samples()
            samples.extend(dict(s) for s in handle.last_samples)
        return samples

    def snapshot(self) -> dict:
        """Worker health + placement (folded into server snapshots)."""
        return {
            "workers": [
                {"index": handle.index, "pid": handle.proc.pid,
                 "alive": handle.alive, "dead_reason": handle.dead,
                 "requests": handle.requests}
                for handle in self._handles],
            "placement": {name: placement.handle.index
                          for name, placement in self._placements.items()},
            "transport": self.transport,
        }

    def __repr__(self):
        alive = sum(1 for h in self._handles if h.alive)
        return (f"ProcessPoolBackend(workers={len(self._handles)}, "
                f"alive={alive}, regions={list(self._placements)})")
