"""QoSArbiter: one controller, one error budget, many regions.

The PR-2 QoS loop attached one controller per harness; a multi-region
server needs the opposite — a *single* controller whose policy sees
every region's decisions and observations, so the error budget is a
global resource arbitrated across the fleet rather than five
independent promises.  :class:`QoSArbiter` is that controller: a
:class:`~repro.qos.QoSController` pre-wired with a
:class:`~repro.qos.BudgetArbitrationPolicy` (plus optional
higher-priority policies such as drift-burst collection), made
thread-safe so regions served from different backend worker threads
can consult it concurrently.
"""

from __future__ import annotations

import threading

from ..qos.monitor import QoSController
from ..qos.policy import BudgetArbitrationPolicy, CompositePolicy

__all__ = ["QoSArbiter"]


class QoSArbiter(QoSController):
    """Thread-safe shared controller splitting a global error budget.

    ``policies`` are consulted *before* arbitration (first override
    wins), which is how a :class:`~repro.qos.DriftBurstPolicy` gets to
    answer drift with a collection burst while the arbiter keeps the
    budget honest for everything else.  All the usual controller knobs
    (``shadow_rate``, ``metric``, ``shadow_rows``, ...) pass through.
    Long-running servers should set ``spend_window`` so the budget
    ledgers decay instead of letting ancient spend constrain the
    present (see :class:`~repro.qos.BudgetArbitrationPolicy`).
    """

    def __init__(self, global_budget: float, *, headroom: float = 0.9,
                 warmup: int = 2, rebalance_every: int = 32,
                 probe_interval: int = 8, pessimistic: bool = False,
                 charge: str = "squared", spend_window: int | None = None,
                 policies=(), shadow_rate: float = 0.1, seed: int = 0,
                 commit: str = "surrogate", metric: str = "relative",
                 alpha: float = 0.2, quantile: float = 0.95,
                 telemetry=None, shadow_rows: int | None = None,
                 precision_policy=None):
        self.arbitration = BudgetArbitrationPolicy(
            global_budget, headroom=headroom, warmup=warmup,
            rebalance_every=rebalance_every, probe_interval=probe_interval,
            pessimistic=pessimistic, charge=charge,
            spend_window=spend_window)
        members = list(policies) + [self.arbitration]
        policy = members[0] if len(members) == 1 \
            else CompositePolicy(*members)
        super().__init__(policy=policy, shadow_rate=shadow_rate, seed=seed,
                         commit=commit, metric=metric, alpha=alpha,
                         quantile=quantile, telemetry=telemetry,
                         shadow_rows=shadow_rows,
                         precision_policy=precision_policy)
        self._lock = threading.Lock()

    @property
    def global_budget(self) -> float:
        return self.arbitration.global_budget

    # The per-invocation hooks (decide / observe_shadow / row_subset)
    # are the only controller surface touched from backend worker
    # threads; everything they mutate (ledgers, rolling stats,
    # telemetry counters, the validator's RNG) is shared across
    # regions, so all of them serialize on one lock.
    def decide(self, region_name, base_path):
        with self._lock:
            return super().decide(region_name, base_path)

    def observe_shadow(self, region_name, predicted, accurate):
        with self._lock:
            return super().observe_shadow(region_name, predicted, accurate)

    def row_subset(self, batch: int):
        with self._lock:
            return super().row_subset(batch)

    def charge_budget(self, region_name: str, error: float) -> bool:
        # Precision divergence charges mutate the shared ledgers.
        with self._lock:
            return super().charge_budget(region_name, error)

    def snapshot(self) -> dict:
        with self._lock:
            out = super().snapshot()
            out["global_budget"] = self.global_budget
            out["arbitration"] = self.arbitration.snapshot()
            out["rollup"] = self.telemetry.rollup()
        return out

    def reset_region(self, region_name: str) -> None:
        with self._lock:
            super().reset_region(region_name)

    def reset(self) -> None:
        with self._lock:
            super().reset()
