"""Crash-safe file writes shared across the persistence surfaces.

PR 6 made :func:`repro.nn.serialize.save_model` crash-safe (serialize
to a sibling temp file, fsync, ``os.replace``); every other writer that
feeds dashboards or offline analysis needs the same guarantee — a
telemetry export or decision stream torn mid-write is worse than a
missing one, because downstream tooling trusts what it parses.  This
module factors that write path into one helper so the model format,
the QoS telemetry export, and the observability stream recorder all
share it.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text"]


def atomic_write_bytes(path, blob: bytes, suffix: str = ".tmp") -> Path:
    """Write ``blob`` to ``path`` via tmp + fsync + ``os.replace``.

    A crash at any point leaves either the previous complete file or
    the new complete file, never a torn mix.  Parent directories are
    created as needed; the temp file is a sibling (same filesystem) so
    the final ``os.replace`` is atomic on POSIX.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + suffix)
    with open(tmp_path, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    return path


def atomic_write_text(path, text: str, suffix: str = ".tmp") -> Path:
    """Crash-safe UTF-8 text write (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode("utf-8"), suffix=suffix)
