"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The serving stack grew three incompatible instrumentation views
(``EventLog`` phase timings, ``QoSTelemetry`` decision counters,
breaker/server ``snapshot()`` dicts).  This module is the one metrics
vocabulary they all now speak:

* :class:`Counter` / :class:`Gauge` / :class:`Histogram` — small
  lock-protected primitives with O(1) recording cost, labeled by
  arbitrary key/value pairs (``region=...``, ``path=...``,
  ``tenant=...``).
* :class:`MetricsRegistry` — get-or-create metric handles keyed on
  ``(kind, name, labels)``; hot paths resolve a handle once and hold
  it, so recording never pays a registry lookup.
* **Collectors** — subsystems that keep their own single-writer
  aggregates (the per-region :class:`~repro.runtime.events.EventLog`)
  register a callback that contributes samples at snapshot time: zero
  hot-path cost, one export surface.

``snapshot()`` returns a plain JSON-ready dict — the export contract a
future ``/metrics`` HTTP endpoint serves verbatim — and ``rollup()``
aggregates a metric across label sets (the cross-region fleet view).
"""

from __future__ import annotations

import json
import math
import threading
import weakref
from bisect import bisect_left

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "LATENCY_BUCKETS", "merge_histograms"]

#: Default latency bucket upper bounds (seconds): log-spaced from 1 µs
#: to 10 s, the range region invocations and retrains actually span.
#: The final implicit bucket is +inf.
LATENCY_BUCKETS = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)


def _labels_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing labeled count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value

    def sample(self) -> dict:
        return {"type": "counter", "name": self.name, "labels": self.labels,
                "value": self._value}

    def __repr__(self):
        return f"Counter({self.name!r}, {self.labels}, value={self._value})"


class Gauge:
    """A labeled value that goes up and down (or a state string)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = dict(labels)
        self._value = None
        self._lock = threading.Lock()

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def add(self, n: float = 1.0) -> None:
        with self._lock:
            self._value = (self._value or 0.0) + n

    @property
    def value(self):
        return self._value

    def sample(self) -> dict:
        return {"type": "gauge", "name": self.name, "labels": self.labels,
                "value": self._value}

    def __repr__(self):
        return f"Gauge({self.name!r}, {self.labels}, value={self._value})"


class Histogram:
    """Fixed-bucket histogram with streaming sum/min/max.

    Buckets are upper bounds (ascending) with an implicit +inf bucket;
    recording is one bisect plus a few adds — O(1), allocation-free,
    and **lock-free single-writer**: the observability layer's
    thread-safety model gives every histogram one writer at a time
    (serving backends pin each region to one thread; the QoSArbiter
    serializes its shared telemetry under its own lock), so the
    per-invocation hot path pays no lock.  Cross-thread *writers* must
    serialize externally; readers (:meth:`sample`) may see one
    in-flight observation torn across count/sum, and quiesced reads
    are exact.  :class:`Counter`/:class:`Gauge` stay locked — they are
    the genuinely shared primitives.
    Quantiles (:meth:`quantile`) interpolate linearly within the bucket
    containing the target rank, which is the standard
    fixed-bucket-histogram estimate: exact bucket choice bounds the
    error, not sample count.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, labels: dict, buckets=None):
        self.name = name
        self.labels = dict(labels)
        self.bounds = tuple(buckets if buckets is not None
                            else LATENCY_BUCKETS)
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram buckets must be strictly ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile from the bucket counts (NaN if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cum = 0
        for idx, n in enumerate(self.counts):
            if n == 0:
                continue
            lo = self.bounds[idx - 1] if idx > 0 else \
                min(self.min, self.bounds[0])
            hi = self.bounds[idx] if idx < len(self.bounds) else self.max
            if cum + n >= rank:
                frac = (rank - cum) / n
                # Clamp to observed extremes so tiny samples do not
                # report a bucket edge no observation ever reached.
                return float(min(max(lo + frac * (hi - lo), self.min),
                                 self.max))
            cum += n
        return float(self.max)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def sample(self) -> dict:
        counts = list(self.counts)
        count, total = self.count, self.sum
        mn, mx = self.min, self.max
        out = {"type": "histogram", "name": self.name, "labels": self.labels,
               "count": count, "sum": total,
               "min": None if count == 0 else mn,
               "max": None if count == 0 else mx,
               "buckets": dict(zip([str(b) for b in self.bounds]
                                   + ["+inf"], counts))}
        for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
            v = self.quantile(q)
            out[key] = None if v != v else v
        return out

    def __repr__(self):
        return (f"Histogram({self.name!r}, {self.labels}, "
                f"count={self.count}, mean={self.mean:.3g})")


def merge_histograms(samples: list) -> dict:
    """Merge histogram sample dicts (same bucket layout) into one.

    The cross-region roll-up: bucket counts add, so quantiles of the
    merged distribution stay exact to bucket resolution.
    """
    if not samples:
        return {}
    merged = {"type": "histogram", "count": 0, "sum": 0.0,
              "min": None, "max": None,
              "buckets": {k: 0 for k in samples[0]["buckets"]}}
    for s in samples:
        if set(s["buckets"]) != set(merged["buckets"]):
            raise ValueError("cannot merge histograms with different "
                             "bucket layouts")
        merged["count"] += s["count"]
        merged["sum"] += s["sum"]
        for k, n in s["buckets"].items():
            merged["buckets"][k] += n
        for key, pick in (("min", min), ("max", max)):
            if s[key] is not None:
                merged[key] = s[key] if merged[key] is None \
                    else pick(merged[key], s[key])
    bounds = [float(k) for k in merged["buckets"] if k != "+inf"]
    counts = list(merged["buckets"].values())
    for q, key in ((0.5, "p50"), (0.95, "p95"), (0.99, "p99")):
        merged[key] = _merged_quantile(bounds, counts, merged, q)
    return merged


def _merged_quantile(bounds, counts, merged, q):
    count = merged["count"]
    if count == 0:
        return None
    rank = q * count
    cum = 0
    for idx, n in enumerate(counts):
        if n == 0:
            continue
        lo = bounds[idx - 1] if idx > 0 else min(merged["min"], bounds[0])
        hi = bounds[idx] if idx < len(bounds) else merged["max"]
        if cum + n >= rank:
            frac = (rank - cum) / n
            return float(min(max(lo + frac * (hi - lo), merged["min"]),
                             merged["max"]))
        cum += n
    return float(merged["max"])


class MetricsRegistry:
    """Get-or-create registry of labeled metrics plus collectors.

    Handles are stable: two lookups with the same kind/name/labels
    return the same object, so hot paths resolve once and record
    forever after without touching the registry.  Collectors are held
    by weakref — a dropped ``EventLog`` silently stops contributing.
    """

    def __init__(self):
        self._metrics: dict[tuple, object] = {}
        self._lock = threading.Lock()
        self._collectors: list = []          # weakref.ref -> callable owner

    # -- handles ---------------------------------------------------------
    def _get(self, kind, cls, name, labels, **kwargs):
        key = (kind, name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = self._metrics[key] = cls(name, labels, **kwargs)
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, buckets=None, **labels) -> Histogram:
        return self._get("histogram", Histogram, name, labels,
                         buckets=buckets)

    def metrics(self) -> list:
        return list(self._metrics.values())

    def __len__(self):
        return len(self._metrics)

    # -- collectors ------------------------------------------------------
    def register_collector(self, owner) -> None:
        """Register ``owner`` (has ``collect() -> list[sample dict]``).

        Held weakly: a garbage-collected owner drops out of snapshots
        automatically, so short-lived EventLogs never leak into the
        process-global registry.
        """
        with self._lock:
            self._collectors.append(weakref.ref(owner))

    def _collected(self) -> list:
        samples = []
        dead = False
        for ref in self._collectors:
            owner = ref()
            if owner is None:
                dead = True
                continue
            samples.extend(owner.collect())
        if dead:
            with self._lock:
                self._collectors = [r for r in self._collectors
                                    if r() is not None]
        return samples

    # -- export ----------------------------------------------------------
    def snapshot(self) -> dict:
        """All samples (direct metrics + collectors) as a plain dict.

        Shape: ``{"metrics": {name: [sample, ...]}}`` with samples
        sorted by label key for deterministic output — the JSON feed a
        ``/metrics`` endpoint or ``repro stats`` renders.
        """
        # Collectors run first: they may fold deferred observations
        # into registry metrics (lazy histogram folding), and those
        # must land before the direct metrics are serialized.
        collected = self._collected()
        by_name: dict[str, list] = {}
        for metric in self.metrics():
            by_name.setdefault(metric.name, []).append(metric.sample())
        for sample in collected:
            by_name.setdefault(sample["name"], []).append(sample)
        for name in by_name:
            by_name[name].sort(key=lambda s: _labels_key(s.get("labels", {})))
        return {"metrics": by_name}

    def rollup(self, name: str, **match) -> dict:
        """Aggregate one metric across label sets matching ``match``.

        Counters/gauges sum; histograms merge bucket-wise (quantiles of
        the merged distribution).  ``match`` filters on label equality,
        e.g. ``rollup("qos_decisions", path="infer")``.
        """
        samples = [s for s in self.snapshot()["metrics"].get(name, [])
                   if all(s.get("labels", {}).get(k) == v
                          for k, v in match.items())]
        if not samples:
            return {"name": name, "samples": 0}
        kinds = {s["type"] for s in samples}
        if kinds == {"histogram"}:
            out = merge_histograms(samples)
        else:
            out = {"type": samples[0]["type"],
                   "value": sum(s["value"] or 0.0 for s in samples)}
        out.update(name=name, samples=len(samples))
        return out

    def export(self, path) -> None:
        """Crash-safe JSON dump of :meth:`snapshot` (tmp+fsync+replace)."""
        from ..ioutil import atomic_write_text
        atomic_write_text(path, json.dumps(self.snapshot(), indent=2,
                                           sort_keys=True) + "\n")

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()
