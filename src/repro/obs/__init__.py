"""Unified observability: metrics registry, tracing, telemetry streams.

One subsystem replaces the three instrumentation views that grew with
PRs 1–6 (``EventLog`` timings, ``QoSTelemetry`` counters, component
snapshots):

* :mod:`repro.obs.registry` — labeled counters/gauges/histograms with
  a JSON export contract (the future ``/metrics`` endpoint body);
* :mod:`repro.obs.trace` — per-invocation trace ids + span trees in a
  bounded ring buffer;
* :mod:`repro.obs.stream` — per-decision records persisted to the
  ``repro.h5`` format for reproducible offline replay;
* :mod:`repro.obs.stats` — the ``repro stats`` text dashboard.

Instrumentation is **default-on** and built on *one measurement, two
views*: the EventLog's invocation ring is the only hot-path record,
and metrics (collector fold at snapshot time) and traces (source pull
at read time) derive from it lazily.  Components fall back to the
process-wide registry/tracer below when not given instance-scoped
ones.  :func:`set_enabled` is the global kill switch (used by the
overhead benchmark's baseline leg); it gates the explicit spans and
stream writes, the only per-invocation costs beyond the timing the
runtime always took.
"""

from __future__ import annotations

from .registry import (Counter, Gauge, Histogram, LATENCY_BUCKETS,
                       MetricsRegistry, merge_histograms)
from .stats import render_dashboard
from .stream import DecisionStream, input_digest, read_stream
from .trace import Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "LATENCY_BUCKETS",
    "merge_histograms", "Span", "Tracer", "DecisionStream", "read_stream",
    "input_digest", "render_dashboard",
    "metrics", "tracer", "snapshot", "set_enabled", "is_enabled", "reset",
]

_default_registry = MetricsRegistry()
_default_tracer = Tracer()
_enabled = True


def metrics() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _default_registry


def tracer() -> Tracer:
    """The process-wide default tracer."""
    return _default_tracer


def set_enabled(flag: bool) -> None:
    """Globally enable/disable default-on instrumentation."""
    global _enabled
    _enabled = bool(flag)
    _default_tracer.enabled = _enabled


def is_enabled() -> bool:
    return _enabled


def snapshot() -> dict:
    """Combined metrics + trace snapshot (the ``repro stats`` feed)."""
    return {"metrics": _default_registry.snapshot(),
            "traces": _default_tracer.snapshot()}


def reset() -> None:
    """Clear the default registry and tracer (test isolation helper)."""
    _default_registry.reset()
    _default_tracer.reset()
