"""Persisted per-decision telemetry streams (offline replay feed).

Appends one record per QoS decision — inputs digest, execution path,
shadow error, policy reason, budget spend, breaker state — to the
repo's own ``repro.h5`` container so a serving run can be replayed
offline bit-for-bit.  This is the input the ROADMAP item-5 BO tuner
needs: a policy search can re-score recorded decisions against
candidate budgets without re-running the application.

Layout: one group per region holding two appendable datasets,

* ``codes``  — int64, inner shape ``(5,)``: inputs digest, path code,
  reason code, breaker code, precision code (codes index the JSON
  vocab attrs);
* ``values`` — float64, inner shape ``(2,)``: shadow error, budget
  spend (NaN encodes "absent" and decodes back to ``None``).

Streams written before the precision column had inner shape ``(4,)``;
the reader decodes both widths (old records replay with
``precision=None``), and appending to an old-width file keeps its
width by dropping the precision code.

No wall-clock timestamps are stored — deliberately — so a fixed-seed
run produces byte-identical records.  Writes buffer in memory
(:class:`~repro.runtime.collect.DataCollector` idiom) and each flush
lands through the crash-safe tmp+fsync+replace path.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from pathlib import Path

import numpy as np

from ..h5 import File

__all__ = ["DecisionStream", "read_stream", "input_digest"]

_SCHEMA = "repro-decision-stream-v1"
_NONE_CODE = -1


def input_digest(*arrays) -> int:
    """Stable 63-bit digest of the invocation's input tensors.

    blake2b over dtype/shape/bytes of each array, truncated to fit a
    signed int64 dataset.  The same inputs always hash the same, so a
    replayed stream can be joined back to the run that produced it.
    """
    h = hashlib.blake2b(digest_size=8)
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(arr.tobytes())
    return int.from_bytes(h.digest(), "little") & 0x7FFF_FFFF_FFFF_FFFF


class _RegionStream:
    """Buffered rows + string vocabularies for one region."""

    __slots__ = ("codes", "values", "vocab")

    def __init__(self):
        self.codes: list = []
        self.values: list = []
        # One vocabulary per coded column, in column order.
        self.vocab = {"paths": [], "reasons": [], "breakers": [],
                      "precisions": []}

    def code(self, column: str, token) -> int:
        if token is None:
            return _NONE_CODE
        vocab = self.vocab[column]
        try:
            return vocab.index(token)
        except ValueError:
            vocab.append(token)
            return len(vocab) - 1


class DecisionStream:
    """Appends per-decision records to an h5 stream file.

    Thread-safe: backend workers for different regions may record
    concurrently.  Records buffer in memory and persist on
    :meth:`flush` / :meth:`close` (and automatically every
    ``flush_every`` records) via the atomic write path.
    """

    def __init__(self, path, flush_every: int = 512):
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self._regions: dict[str, _RegionStream] = {}
        self._pending = 0
        self._file: File | None = None
        self._lock = threading.Lock()
        self._closed = False

    def record(self, region: str, *, digest: int = 0,
               path: str = "accurate", reason: str | None = None,
               breaker: str | None = None,
               shadow_error: float | None = None,
               spend: float | None = None,
               precision: str | None = None) -> None:
        """Buffer one decision record (persisted at flush)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("stream is closed")
            rs = self._regions.get(region)
            if rs is None:
                rs = self._regions[region] = _RegionStream()
            rs.codes.append((int(digest),
                             rs.code("paths", path),
                             rs.code("reasons", reason),
                             rs.code("breakers", breaker),
                             rs.code("precisions", precision)))
            rs.values.append((math.nan if shadow_error is None
                              else float(shadow_error),
                              math.nan if spend is None else float(spend)))
            self._pending += 1
            should_flush = self._pending >= self.flush_every
        if should_flush:
            self.flush()

    def flush(self) -> None:
        """Persist buffered records (atomic replace of the stream file)."""
        with self._lock:
            if self._pending == 0 and self._file is None:
                return
            if self._file is None:
                mode = "a" if self.path.exists() else "w"
                self._file = File(self.path, mode, atomic=True)
                self._file.attrs["schema"] = _SCHEMA
            for region, rs in self._regions.items():
                group = self._file.require_group(region)
                if rs.codes:
                    codes_ds = group.require_dataset("codes", (5,), np.int64)
                    rows = np.asarray(rs.codes,
                                      dtype=np.int64).reshape(-1, 5)
                    # Appending to a pre-precision stream keeps the
                    # file's original width (old readers stay valid).
                    width = codes_ds.shape[1]
                    codes_ds.append(rows[:, :width])
                    group.require_dataset("values", (2,), np.float64).append(
                        np.asarray(rs.values,
                                   dtype=np.float64).reshape(-1, 2))
                    rs.codes.clear()
                    rs.values.clear()
                # Vocabs rewrite every flush: they only ever grow, and
                # codes already written stay valid.
                for column, vocab in rs.vocab.items():
                    group.attrs[column] = json.dumps(vocab)
            self._pending = 0
            self._file.flush()

    def close(self) -> None:
        try:
            self.flush()
        finally:
            with self._lock:
                if self._file is not None:
                    self._file.close()
                    self._file = None
                self._closed = True

    def __enter__(self) -> "DecisionStream":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def read_stream(path) -> dict:
    """Decode a stream file: ``{region: [record dict, ...]}``.

    Records come back in append order with plain-Python values
    (``None`` where the writer recorded an absent reason/error), so two
    fixed-seed runs compare with ``==``.
    """
    out: dict[str, list] = {}
    with File(path, "r") as fh:
        if fh.attrs.get("schema") != _SCHEMA:
            raise ValueError(
                f"{path} is not a decision stream "
                f"(schema={fh.attrs.get('schema')!r})")
        for region, group in fh.groups().items():
            vocab = {column: json.loads(group.attrs.get(column, "[]"))
                     for column in ("paths", "reasons", "breakers",
                                    "precisions")}

            def decode(column, code):
                return None if code == _NONE_CODE else vocab[column][code]

            codes = group["codes"].read() if "codes" in group else \
                np.empty((0, 5), dtype=np.int64)
            values = group["values"].read() if "values" in group else \
                np.empty((0, 2), dtype=np.float64)
            # Pre-precision streams carry width-4 code rows.
            wide = codes.shape[1] >= 5
            records = []
            for seq in range(min(len(codes), len(values))):
                digest, path_c, reason_c, breaker_c = codes[seq][:4]
                prec_c = int(codes[seq][4]) if wide else _NONE_CODE
                err, spend = values[seq]
                records.append({
                    "seq": seq,
                    "digest": int(digest),
                    "path": decode("paths", int(path_c)),
                    "reason": decode("reasons", int(reason_c)),
                    "breaker": decode("breakers", int(breaker_c)),
                    "precision": decode("precisions", prec_c),
                    "shadow_error": None if math.isnan(err) else float(err),
                    "spend": None if math.isnan(spend) else float(spend),
                })
            out[region] = records
    return out
