"""Text dashboard rendering for ``repro stats``.

Turns an observability snapshot — ``{"metrics": ..., "traces": ...}``
as produced by :func:`repro.obs.snapshot` or found under the ``obs``
key of a ``RegionServer.snapshot()`` — into a fixed-width terminal
dashboard.  Pure formatting: no imports from the serving stack, so the
CLI can render a JSON file from a dead process just as well as a live
registry.
"""

from __future__ import annotations

__all__ = ["render_dashboard"]

_RULE = "─" * 72


def _fmt(value, width: int = 10) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, float):
        if value != value:                       # NaN
            return "-".rjust(width)
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.3e}".rjust(width)
        return f"{value:.4g}".rjust(width)
    return str(value).rjust(width)


def _labels(sample: dict) -> str:
    labels = sample.get("labels") or {}
    if not labels:
        return "(total)"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _render_scalars(lines: list, title: str, samples: list) -> None:
    lines.append(f"{title}")
    for s in samples:
        lines.append(f"  {s['name']:<32} {_labels(s):<28} "
                     f"{_fmt(s.get('value'), 12)}")


def _render_histograms(lines: list, samples: list) -> None:
    lines.append("histograms")
    header = (f"  {'name':<28} {'labels':<24} {'count':>7} {'mean':>10} "
              f"{'p50':>10} {'p95':>10} {'p99':>10} {'max':>10}")
    lines.append(header)
    for s in samples:
        count = s.get("count", 0)
        mean = (s["sum"] / count) if count else None
        lines.append(
            f"  {s['name']:<28} {_labels(s):<24} {count:>7} "
            f"{_fmt(mean)} {_fmt(s.get('p50'))} {_fmt(s.get('p95'))} "
            f"{_fmt(s.get('p99'))} {_fmt(s.get('max'))}")


def _render_span(lines: list, span: dict, depth: int) -> None:
    indent = "  " * depth
    attrs = span.get("attrs")
    suffix = ""
    if attrs:
        suffix = "  " + ",".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    lines.append(f"    {indent}{span['name']:<{max(4, 30 - 2 * depth)}} "
                 f"{_fmt(span.get('seconds'), 10)}s{suffix}")
    for child in span.get("children", []):
        _render_span(lines, child, depth + 1)


def render_dashboard(snapshot: dict, max_traces: int = 5) -> str:
    """Render one observability snapshot as a text dashboard."""
    lines = [_RULE, "repro stats", _RULE]

    by_name = (snapshot.get("metrics") or {}).get("metrics", {})
    counters, gauges, histograms = [], [], []
    for name in sorted(by_name):
        for sample in by_name[name]:
            kind = sample.get("type")
            if kind == "counter":
                counters.append(sample)
            elif kind == "gauge":
                gauges.append(sample)
            elif kind == "histogram":
                histograms.append(sample)
    if counters:
        _render_scalars(lines, "counters", counters)
    if gauges:
        _render_scalars(lines, "gauges", gauges)
    if histograms:
        _render_histograms(lines, histograms)
    if not (counters or gauges or histograms):
        lines.append("no metrics recorded")

    traces = snapshot.get("traces") or {}
    entries = traces.get("traces", [])
    lines.append(_RULE)
    lines.append(f"traces  seen={traces.get('seen', 0)} "
                 f"buffered={traces.get('buffered', len(entries))} "
                 f"capacity={traces.get('capacity', '-')}")
    for entry in entries[-max_traces:]:
        title = entry.get("name") or \
            f"{entry.get('region', '?')} [{entry.get('path', '?')}]"
        lines.append(f"  #{entry.get('trace_id', '?')} {entry['kind']} "
                     f"{title} {_fmt(entry.get('seconds'), 10)}s")
        root = entry.get("root")
        if root:
            for child in root.get("children", []):
                _render_span(lines, child, 0)
    if not entries:
        lines.append("  (empty ring)")
    lines.append(_RULE)
    return "\n".join(lines) + "\n"
