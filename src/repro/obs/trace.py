"""Invocation tracing: trace ids, span trees, bounded ring buffer.

Every region invocation gets a **trace id** and a tree of **spans**
(to_tensor → infer/accurate → shadow → policy decision → breaker
verdict).  Three recording styles, matched to cost:

* **Hot path** — invocation traces are not recorded at all: the
  :class:`~repro.runtime.events.EventLog` ring *is* the trace store.
  Each log registers as a **trace source** and the tracer pulls
  compact ``(region, path, seconds, phases, notes)`` entries from it
  at *read* time, materializing the span tree lazily from the phase
  timings and notes the invocation already carried.  Zero
  per-invocation tracing cost — one measurement, two views.
  (:meth:`Tracer.record_invocation` folds the same compact entry into
  the tracer's own ring, for recorders that keep no ring of their
  own.)
* **Warm path** — :meth:`Tracer.record_span` is a post-hoc span for
  code that timed itself (batch flushes): one allocation and a deque
  append, no contextvars round trip.
* **Cold path** — :meth:`Tracer.span` is a real context-manager span
  with contextvars parenting, for retrains and hot swaps where a few
  microseconds of bookkeeping are irrelevant and genuine nesting
  matters.

The span ring is bounded (``deque(maxlen=...)``), and the merged trace
view is truncated to the ring capacity: long-running servers keep the
most recent traces and a monotone ``seen`` total, never unbounded
memory.  Invocation trace ids are per-log monotone invocation indices
(stable across ring eviction); span ids come from the tracer's own
counter.  Ordering across sources is per-source most-recent-last — a
merged global order would need hot-path timestamps, which is exactly
the cost this design avoids.  ``ThreadPoolExecutor`` does not
propagate contextvars, so spans opened inside backend workers become
trace roots — by design: each worker invocation is its own causal
unit.
"""

from __future__ import annotations

import itertools
import threading
import time
import weakref
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = ["Span", "Tracer"]

_DEFAULT_CAPACITY = 4096

#: Current live span, for contextvars parenting of cold-path spans.
_current_span: ContextVar = ContextVar("repro_obs_current_span",
                                       default=None)


class Span:
    """One timed node in a trace tree (JSON-ready via :meth:`to_dict`)."""

    __slots__ = ("name", "seconds", "attrs", "children")

    def __init__(self, name: str, seconds: float = 0.0,
                 attrs: dict | None = None):
        self.name = name
        self.seconds = seconds
        self.attrs = attrs or {}
        self.children: list[Span] = []

    def child(self, name: str, seconds: float = 0.0,
              attrs: dict | None = None) -> "Span":
        node = Span(name, seconds, attrs)
        self.children.append(node)
        return node

    def freeze(self) -> "Span":
        """Already immutable — lets finished spans sit beside
        :class:`_LiveSpan` children in a live span tree."""
        return self

    def to_dict(self) -> dict:
        out = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self):
        return (f"Span({self.name!r}, {self.seconds:.3g}s, "
                f"children={len(self.children)})")


class _LiveSpan:
    """Mutable span under construction inside :meth:`Tracer.span`."""

    __slots__ = ("name", "attrs", "children", "start", "seconds")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.children: list = []
        self.start = time.perf_counter()
        self.seconds = 0.0

    def freeze(self) -> Span:
        span = Span(self.name, self.seconds, self.attrs or None)
        span.children = [c.freeze() for c in self.children]
        return span


class Tracer:
    """Bounded ring of recent traces, hot-fold or span-context recorded."""

    def __init__(self, capacity: int = _DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._ids = itertools.count(1)          # atomic under the GIL
        self._seen_value = 0
        self._seen_lock = threading.Lock()
        self._sources: list = []                # weakref.ref -> source
        self.enabled = True

    def next_id(self) -> int:
        """Allocate a trace id (monotone across the process)."""
        return next(self._ids)

    @property
    def seen(self) -> int:
        """Total traces recorded *into the ring* (survives eviction);
        :meth:`snapshot` adds the registered sources' own totals."""
        return self._seen_value

    # -- trace sources ---------------------------------------------------
    def register_source(self, source) -> None:
        """Register a trace source (the read-time half of tracing).

        A source keeps its own ring of invocations and exposes
        ``trace_entries(limit)`` (compact ``("inv", ...)`` tuples,
        most-recent-last) plus a monotone ``seen`` total — the
        :class:`~repro.runtime.events.EventLog` contract.  Held weakly,
        like registry collectors: dropped logs silently stop
        contributing.
        """
        with self._seen_lock:
            self._sources.append(weakref.ref(source))

    def _live_sources(self) -> list:
        sources, dead = [], False
        for ref in self._sources:
            source = ref()
            if source is None:
                dead = True
                continue
            sources.append(source)
        if dead:
            with self._seen_lock:
                self._sources = [r for r in self._sources
                                 if r() is not None]
        return sources

    # -- hot path --------------------------------------------------------
    def record_invocation(self, region: str, path: str, seconds: float,
                          phases, notes: dict | None = None,
                          trace_id: int | None = None) -> int:
        """Fold one finished invocation into the tracer's own ring.

        For recorders that keep no invocation ring of their own —
        EventLogs register as :meth:`trace sources <register_source>`
        instead and pay nothing per invocation.

        ``phases`` is a reusable sequence of ``(name, seconds)`` pairs
        in execution order, or a ``{phase: seconds}`` mapping (enum
        keys render by their ``.value``); ``notes`` carries the
        decision context (policy reason, breaker verdict, shadow
        error, digest, ...).  Both are stored **by reference** — hand
        the tracer data you will not mutate afterwards.  Costs one
        deque append — the span tree is built on read.
        """
        if trace_id is None:
            trace_id = next(self._ids)
        self._ring.append(("inv", trace_id, region, path, seconds,
                           phases, notes))
        lock = self._seen_lock              # bare acquire/release: no
        lock.acquire()                      # context-manager frame on
        self._seen_value += 1               # the per-invocation path
        lock.release()
        return trace_id

    def record_span(self, name: str, seconds: float, **attrs) -> None:
        """Post-hoc span record: the cheap sibling of :meth:`span` for
        hot-ish code that timed itself (no contextvars round trip, no
        generator frame).  Nests under an enclosing live :meth:`span`
        when one is open on this thread, else folds into the ring."""
        if not self.enabled:
            return
        span = Span(name, seconds, attrs or None)
        parent = _current_span.get()
        if parent is not None:
            parent.children.append(span)
        else:
            self._ring.append(("span", next(self._ids), span))
            with self._seen_lock:
                self._seen_value += 1

    # -- cold path -------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs):
        """Timed span; nests under any enclosing :meth:`span`.

        Root spans fold into the ring on exit.  An exception inside the
        span is recorded (``attrs["error"]``) and re-raised.
        """
        if not self.enabled:
            yield None
            return
        live = _LiveSpan(name, attrs)
        parent = _current_span.get()
        token = _current_span.set(live)
        try:
            yield live
        except BaseException as exc:
            live.attrs = dict(live.attrs, error=type(exc).__name__)
            raise
        finally:
            live.seconds = time.perf_counter() - live.start
            _current_span.reset(token)
            if parent is not None:
                parent.children.append(live)
            else:
                self._ring.append(("span", next(self._ids), live))
                with self._seen_lock:
                    self._seen_value += 1

    # -- read side -------------------------------------------------------
    @staticmethod
    def _materialize(entry) -> dict:
        kind = entry[0]
        if kind == "span":
            _, trace_id, live = entry
            root = live.freeze()
            return {"trace_id": trace_id, "kind": "span",
                    "name": root.name, "seconds": root.seconds,
                    "root": root.to_dict()}
        _, trace_id, region, path, seconds, phases, notes = entry
        root = Span(f"invoke:{region}", seconds,
                    {"region": region, "path": path})
        items = phases.items() if isinstance(phases, dict) else phases
        for phase_name, phase_seconds in items:
            root.child(getattr(phase_name, "value", phase_name),
                       phase_seconds)
        if notes:
            # Decision context becomes zero-duration annotation spans so
            # the causal chain (policy decision → breaker verdict →
            # shadow outcome) reads in order under the invocation root.
            for key in ("policy", "breaker", "shadow"):
                if key in notes:
                    root.child(key, 0.0, {key: notes[key]})
            extra = {k: v for k, v in notes.items()
                     if k not in ("policy", "breaker", "shadow")}
            if extra:
                root.attrs.update(extra)
        return {"trace_id": trace_id, "kind": "invocation",
                "region": region, "path": path, "seconds": seconds,
                "root": root.to_dict()}

    def _entries(self) -> list:
        """Source entries (registration order) then ring entries,
        bounded to the most recent ``capacity`` overall."""
        entries = []
        for source in self._live_sources():
            entries.extend(source.trace_entries(self.capacity))
        entries.extend(tuple(self._ring))
        return entries[-self.capacity:]

    def traces(self, region: str | None = None,
               limit: int | None = None) -> list:
        """Most-recent-last trace dicts (filtered, optionally truncated).

        Merges the span ring with all registered trace sources; spans
        carry no region, so a ``region`` filter selects invocations
        only.
        """
        out = []
        for entry in self._entries():
            if region is not None:
                entry_region = entry[2] if entry[0] == "inv" else None
                if entry_region != region:
                    continue
            out.append(self._materialize(entry))
        if limit is not None:
            out = out[-limit:]
        return out

    def last(self) -> dict | None:
        """The newest trace, or None if nothing was recorded."""
        entries = self._entries()
        if not entries:
            return None
        return self._materialize(entries[-1])

    def __len__(self):
        return len(self._ring)

    def snapshot(self) -> dict:
        """State summary + materialized traces (JSON-ready).

        ``seen`` totals the ring plus every source; ``buffered`` is
        the merged, capacity-bounded trace view actually returned.
        """
        traces = self.traces()
        seen = self._seen_value + sum(s.seen for s in self._live_sources())
        return {"capacity": self.capacity, "seen": seen,
                "buffered": len(traces), "traces": traces}

    def reset(self) -> None:
        self._ring.clear()
        self._sources.clear()
        self._seen_value = 0
