"""Resilience primitives: retries, circuit breaking, job watchdogs.

Three small, composable pieces the serving stack wires at its failure
points:

* :class:`RetryPolicy` — capped exponential backoff around transient
  failures (``RetrainWorker`` retries a crashed train step instead of
  abandoning the refresh).
* :class:`CircuitBreaker` — per-region health automaton
  ``healthy → degraded → quarantined``: a repeatedly failing or
  NaN-emitting surrogate is demoted to the accurate path, with
  counter-based probe scheduling that lets it earn its way back after
  a hot-swap fixes the model.
* :func:`run_with_timeout` — a thread watchdog for jobs that may hang
  (a wedged trainer must not wedge the retrain worker, whose lock the
  whole poll cycle serializes on).

All state machines are deterministic (counter-driven, no clocks or
RNG), so a scripted fault schedule produces the same transition
sequence every run.
"""

from __future__ import annotations

import logging
import threading
import time

__all__ = ["RetryPolicy", "CircuitBreaker", "NonFiniteOutput",
           "WatchdogTimeout", "run_with_timeout"]

logger = logging.getLogger("repro.resilience")


class NonFiniteOutput(RuntimeError):
    """A guarded surrogate emitted NaN/Inf — treated as a failure by the
    circuit breaker *before* anything is scattered into application
    memory."""


class WatchdogTimeout(TimeoutError):
    """A watchdogged job exceeded its deadline (the thread is abandoned
    as a daemon; its side effects must be discardable)."""


def run_with_timeout(fn, timeout: float | None, name: str = "job"):
    """Run ``fn()`` with a watchdog; raise :class:`WatchdogTimeout` late.

    ``timeout=None`` calls ``fn`` inline (zero overhead).  Otherwise the
    job runs on a daemon thread and the caller waits at most ``timeout``
    seconds: Python offers no safe preemption, so a timed-out job is
    *abandoned*, not killed — callers must treat its side effects as
    discarded (the retrain worker does: a timed-out trainer never
    reaches the hot-swap step).
    """
    if timeout is None:
        return fn()
    box: dict = {}

    def runner():
        try:
            box["result"] = fn()
        except BaseException as exc:          # delivered to the caller
            box["error"] = exc

    thread = threading.Thread(target=runner, name=f"watchdog-{name}",
                              daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise WatchdogTimeout(f"{name} exceeded {timeout:g}s deadline")
    if "error" in box:
        raise box["error"]
    return box["result"]


class RetryPolicy:
    """Capped exponential backoff: ``base * multiplier**attempt``, capped
    at ``max_delay``, for ``max_attempts`` total tries.

    ``sleep`` is injectable so tests assert the schedule without waiting
    it out.  :meth:`run` re-raises the last exception when every attempt
    failed; ``on_retry(attempt, exc)`` fires before each backoff sleep.
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.05,
                 max_delay: float = 2.0, multiplier: float = 2.0,
                 retry_on=(Exception,), sleep=time.sleep):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
        if base_delay < 0 or max_delay < 0 or multiplier < 1.0:
            raise ValueError("delays must be >= 0 and multiplier >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.retry_on = tuple(retry_on)
        self.sleep = sleep

    def delays(self) -> list:
        """The backoff schedule (one entry per retry gap)."""
        return [min(self.max_delay, self.base_delay * self.multiplier ** i)
                for i in range(self.max_attempts - 1)]

    def run(self, fn, *args, on_retry=None, **kwargs):
        """Call ``fn(*args, **kwargs)``, retrying per the schedule."""
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                last = exc
                if on_retry is not None:
                    on_retry(attempt + 1, exc)
                if attempt + 1 < self.max_attempts:
                    self.sleep(min(self.max_delay,
                                   self.base_delay
                                   * self.multiplier ** attempt))
        assert last is not None
        raise last


class CircuitBreaker:
    """Per-region health automaton demoting a failing surrogate.

    States and transitions (all thresholds count *consecutive* events):

    * ``healthy`` — every infer-path invocation is allowed.
      ``failure_threshold`` consecutive failures → ``degraded``.
    * ``degraded`` — invocations are denied (served by the accurate
      kernel) except a probe every ``probe_interval``-th denial, which
      runs the surrogate to test recovery.  ``recovery_successes``
      consecutive probe successes → ``healthy``;
      ``quarantine_threshold`` consecutive failures → ``quarantined``.
    * ``quarantined`` — like degraded but probes only every
      ``cooldown``-th denial (the surrogate is presumed broken until a
      hot-swap replaces it).  ``recovery_successes`` consecutive probe
      successes → ``degraded``.

    The automaton is counter-driven and deterministic.  Methods are
    lock-protected so a breaker shared across backend worker threads
    stays consistent; transitions are logged once each and kept in
    :attr:`transitions` for post-mortems.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    QUARANTINED = "quarantined"

    _MAX_TRANSITIONS = 100

    def __init__(self, failure_threshold: int = 3,
                 quarantine_threshold: int = 8,
                 recovery_successes: int = 2, probe_interval: int = 8,
                 cooldown: int = 32, name: str | None = None):
        if failure_threshold < 1 or quarantine_threshold < failure_threshold:
            raise ValueError("need 1 <= failure_threshold <= "
                             "quarantine_threshold")
        if recovery_successes < 1 or probe_interval < 1 or cooldown < 1:
            raise ValueError("recovery_successes, probe_interval and "
                             "cooldown must be >= 1")
        self.failure_threshold = failure_threshold
        self.quarantine_threshold = quarantine_threshold
        self.recovery_successes = recovery_successes
        self.probe_interval = probe_interval
        self.cooldown = cooldown
        self.name = name
        self._lock = threading.Lock()
        self.state = self.HEALTHY
        self.consecutive_failures = 0
        self.consecutive_successes = 0
        self.failures = 0
        self.successes = 0
        self.denials = 0
        self.probes = 0
        self.last_failure: str | None = None
        self.transitions: list[tuple] = []
        self._since_probe = 0

    # -- the per-invocation protocol -------------------------------------
    def allow(self) -> bool:
        """Whether this infer-path invocation may run the surrogate."""
        with self._lock:
            if self.state == self.HEALTHY:
                return True
            self._since_probe += 1
            interval = (self.probe_interval if self.state == self.DEGRADED
                        else self.cooldown)
            if self._since_probe >= interval:
                self._since_probe = 0
                self.probes += 1
                return True
            self.denials += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self.consecutive_failures = 0
            self.consecutive_successes += 1
            if self.consecutive_successes < self.recovery_successes:
                return
            if self.state == self.QUARANTINED:
                self._transition(self.DEGRADED, "probe successes")
                self.consecutive_successes = 0
            elif self.state == self.DEGRADED:
                self._transition(self.HEALTHY, "probe successes")
                self.consecutive_successes = 0

    def record_failure(self, reason: str | None = None) -> None:
        with self._lock:
            self.failures += 1
            self.consecutive_successes = 0
            self.consecutive_failures += 1
            self.last_failure = reason
            if self.state == self.HEALTHY and \
                    self.consecutive_failures >= self.failure_threshold:
                self._transition(self.DEGRADED, reason)
            elif self.state == self.DEGRADED and \
                    self.consecutive_failures >= self.quarantine_threshold:
                self._transition(self.QUARANTINED, reason)

    def _transition(self, to: str, reason) -> None:
        entry = (self.state, to, reason)
        self.state = to
        self._since_probe = 0
        if len(self.transitions) < self._MAX_TRANSITIONS:
            self.transitions.append(entry)
        label = f" [{self.name}]" if self.name else ""
        logger.warning("circuit breaker%s: %s -> %s (%s)", label,
                       entry[0], to, reason)

    # -- reporting / control ---------------------------------------------
    @property
    def healthy(self) -> bool:
        return self.state == self.HEALTHY

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "failures": self.failures,
                "successes": self.successes,
                "denials": self.denials,
                "probes": self.probes,
                "fallbacks": self.denials + self.failures,
                "last_failure": self.last_failure,
                "transitions": list(self.transitions),
            }

    def reset(self) -> None:
        """Back to healthy with counters cleared (e.g. after a verified
        hot-swap replaced the model the failures belonged to)."""
        with self._lock:
            if self.state != self.HEALTHY:
                self._transition(self.HEALTHY, "reset")
            self.consecutive_failures = 0
            self.consecutive_successes = 0
            self._since_probe = 0

    def __repr__(self):
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self.failures}, denials={self.denials})")
