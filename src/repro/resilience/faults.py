"""Deterministic, seeded fault injection at well-defined seams.

The serving stack's graceful-degradation contract — approximate when
safe, fall back to the accurate kernel when not — can only be trusted
if it is exercised under *faults*, not just under error drift.  This
module scripts faults at the seams where real deployments break:

========================  ==============================================
seam                      where it fires
========================  ==============================================
``SURROGATE``             :meth:`repro.runtime.infer.InferenceEngine.\
infer_with_model`, after the forward — the surrogate raises or emits
                          NaN/Inf/garbage outputs.
``ACCURATE``              :meth:`repro.runtime.region.ApproxRegion.\
_run_accurate` — the accurate kernel slows down (timed as real kernel
                          time).
``TRAINER``               ``RetrainWorker._retrain``'s train step — the
                          trainer raises or hangs.
``HOT_SWAP``              :func:`repro.serving.retrain.hot_swap_model`,
                          between serializing the candidate and
                          verifying it — the model file arrives
                          corrupt/truncated.
``DB_READ``               :func:`repro.serving.retrain.db_row_count` —
                          the training DB read is stale or fails.
========================  ==============================================

Determinism is the point: a :class:`FaultInjector` is seeded, rules
match on per-seam invocation counters (``at``/``start``/``stop``) or on
draws from a per-seam generator (``probability``), and every fault fired
is appended to :attr:`FaultInjector.fired`.  Two runs with the same seed
and the same call sequence produce **bit-identical** fault schedules, so
tests and benchmarks can replay a fault storm exactly.

Hook installation is context-managed and global (one active injector per
process)::

    injector = FaultInjector(seed=7)
    injector.script(SURROGATE, "nan", start=100, stop=112)
    with injector:
        run_serving_loop()
    assert injector.fired == expected_schedule

When no injector is active the seams cost one attribute load and a
``None`` check — the hot path stays the hot path.
"""

from __future__ import annotations

import time
import zlib

import numpy as np

__all__ = ["FaultInjector", "Fault", "InjectedFault", "fire", "active",
           "SURROGATE", "ACCURATE", "TRAINER", "HOT_SWAP", "DB_READ",
           "SEAMS", "apply_surrogate_fault", "apply_kernel_fault",
           "apply_trainer_fault", "apply_file_fault"]

SURROGATE = "surrogate_forward"
ACCURATE = "accurate_kernel"
TRAINER = "trainer"
HOT_SWAP = "hot_swap"
DB_READ = "db_read"

SEAMS = (SURROGATE, ACCURATE, TRAINER, HOT_SWAP, DB_READ)


class InjectedFault(RuntimeError):
    """The exception raised by ``raise``-kind faults (distinguishable
    from organic failures in logs and breaker snapshots)."""


class Fault:
    """One fired fault: which seam, which firing index, what to do."""

    __slots__ = ("seam", "kind", "index", "payload")

    def __init__(self, seam: str, kind: str, index: int, payload: dict):
        self.seam = seam
        self.kind = kind
        self.index = index
        self.payload = payload

    def as_tuple(self) -> tuple:
        """Hashable identity used for schedule-equality assertions."""
        return (self.seam, self.index, self.kind)

    def __repr__(self):
        return f"Fault({self.seam!r}, {self.kind!r}, index={self.index})"


class _Rule:
    __slots__ = ("kind", "at", "start", "stop", "every", "probability",
                 "payload")

    def __init__(self, kind, at, start, stop, every, probability, payload):
        self.kind = kind
        self.at = frozenset(int(i) for i in at) if at is not None else None
        self.start = start
        self.stop = stop
        self.every = every
        self.probability = probability
        self.payload = payload

    def matches(self, index: int, rng: np.random.Generator) -> bool:
        # A probability rule consumes exactly one draw per fire whether
        # or not it matches, so the schedule depends only on the seed
        # and the sequence of fire() calls — never on other rules.
        hit = True
        if self.probability is not None:
            hit = bool(rng.random() < self.probability)
        if self.at is not None:
            return index in self.at and hit
        if index < self.start:
            return False
        if self.stop is not None and index >= self.stop:
            return False
        if self.every is not None and (index - self.start) % self.every:
            return False
        return hit


class FaultInjector:
    """Seeded fault scheduler; install with ``with injector:``."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rules: dict[str, list[_Rule]] = {}
        self._counts: dict[str, int] = {}
        self._rngs: dict[str, np.random.Generator] = {}
        #: Every fault fired, in firing order — the replayable schedule.
        self.fired: list[Fault] = []

    # -- scripting -------------------------------------------------------
    def script(self, seam: str, kind: str, *, at=None, start: int = 0,
               stop: int | None = None, every: int | None = None,
               probability: float | None = None, **payload) -> "FaultInjector":
        """Add one fault rule for ``seam``; rules match first-wins.

        ``at`` pins explicit firing indices (0-based, per seam);
        ``start``/``stop``/``every`` select a window/stride of firings;
        ``probability`` gates the rule on a seeded per-seam draw.
        ``payload`` parameterizes the fault (``seconds`` for slowdowns
        and hangs, ``scale`` for garbage outputs, ``keep`` for
        truncations, ``rows`` for stale DB reads).  Returns ``self`` so
        scripts chain.
        """
        if seam not in SEAMS:
            raise ValueError(f"unknown seam {seam!r}; one of {SEAMS}")
        self._rules.setdefault(seam, []).append(
            _Rule(kind, at, start, stop, every, probability, payload))
        return self

    # -- firing ----------------------------------------------------------
    def _rng(self, seam: str) -> np.random.Generator:
        rng = self._rngs.get(seam)
        if rng is None:
            # Stable per-seam stream: crc32 keys the seam name so adding
            # rules to one seam never perturbs another seam's draws.
            rng = self._rngs[seam] = np.random.default_rng(
                [self.seed, zlib.crc32(seam.encode("utf-8"))])
        return rng

    def fire(self, seam: str, **context) -> Fault | None:
        """One seam firing: advance the counter, match rules in order."""
        index = self._counts.get(seam, 0)
        self._counts[seam] = index + 1
        rules = self._rules.get(seam)
        if not rules:
            return None
        rng = self._rng(seam)
        for rule in rules:
            if rule.matches(index, rng):
                payload = dict(rule.payload)
                payload.update(context)
                fault = Fault(seam, rule.kind, index, payload)
                self.fired.append(fault)
                return fault
        return None

    def count(self, seam: str) -> int:
        """How many times ``seam`` has fired (matched or not)."""
        return self._counts.get(seam, 0)

    def schedule(self) -> list:
        """The fired faults as comparable tuples (determinism checks)."""
        return [f.as_tuple() for f in self.fired]

    def reset(self) -> None:
        """Rewind counters, RNG streams, and the fired log — replaying
        the same call sequence reproduces the same schedule."""
        self._counts.clear()
        self._rngs.clear()
        self.fired.clear()

    # -- installation ----------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("another FaultInjector is already active")
        _ACTIVE = self
        return self

    def __exit__(self, *exc) -> bool:
        global _ACTIVE
        _ACTIVE = None
        return False


#: The process-wide active injector (None when fault injection is off).
_ACTIVE: FaultInjector | None = None


def active() -> FaultInjector | None:
    return _ACTIVE


def fire(seam: str, **context) -> Fault | None:
    """Seam entry point: no-op (None) unless an injector is installed."""
    injector = _ACTIVE
    if injector is None:
        return None
    return injector.fire(seam, **context)


# ----------------------------------------------------------------------
# Fault application helpers (what each seam does with a matched fault)
# ----------------------------------------------------------------------

def apply_surrogate_fault(fault: Fault, outputs: np.ndarray) -> np.ndarray:
    """Corrupt (or abort) a surrogate forward's outputs."""
    if fault.kind == "raise":
        raise InjectedFault(f"injected surrogate failure #{fault.index}")
    out = np.array(outputs, dtype=np.float64)
    if fault.kind == "nan":
        out[...] = np.nan
    elif fault.kind == "inf":
        out[...] = np.inf
    elif fault.kind == "garbage":
        scale = float(fault.payload.get("scale", 1e6))
        out = out * scale + scale
    else:
        raise ValueError(f"unknown surrogate fault kind {fault.kind!r}")
    return out


def apply_kernel_fault(fault: Fault) -> None:
    """Slow the accurate kernel down (rides inside its timed phase)."""
    if fault.kind == "slow":
        time.sleep(float(fault.payload.get("seconds", 0.01)))
    else:
        raise ValueError(f"unknown kernel fault kind {fault.kind!r}")


def apply_trainer_fault(fault: Fault) -> None:
    """Abort or stall a retrain's train step."""
    if fault.kind == "raise":
        raise InjectedFault(f"injected trainer failure #{fault.index}")
    if fault.kind == "hang":
        time.sleep(float(fault.payload.get("seconds", 1.0)))
    else:
        raise ValueError(f"unknown trainer fault kind {fault.kind!r}")


def apply_file_fault(fault: Fault, path) -> None:
    """Corrupt a just-written model file (the torn/partial-write case)."""
    blob = bytearray(path.read_bytes())
    if fault.kind == "truncate":
        keep = float(fault.payload.get("keep", 0.5))
        del blob[int(len(blob) * keep):]
    elif fault.kind == "corrupt":
        offset = int(fault.payload.get("offset", len(blob) // 2))
        blob[offset] ^= 0xFF
    else:
        raise ValueError(f"unknown file fault kind {fault.kind!r}")
    path.write_bytes(bytes(blob))
