"""Fault injection and self-healing primitives for the serving stack.

See :mod:`repro.resilience.faults` for the deterministic seeded
FaultInjector (scripted faults at the surrogate/kernel/trainer/
hot-swap/DB seams) and :mod:`repro.resilience.primitives` for the
pieces the stack wires at those seams: RetryPolicy, CircuitBreaker,
and the run_with_timeout watchdog.
"""

from repro.resilience.faults import (ACCURATE, DB_READ, HOT_SWAP, SEAMS,
                                     SURROGATE, TRAINER, Fault,
                                     FaultInjector, InjectedFault)
from repro.resilience.primitives import (CircuitBreaker, NonFiniteOutput,
                                         RetryPolicy, WatchdogTimeout,
                                         run_with_timeout)

__all__ = [
    "FaultInjector", "Fault", "InjectedFault",
    "SURROGATE", "ACCURATE", "TRAINER", "HOT_SWAP", "DB_READ", "SEAMS",
    "RetryPolicy", "CircuitBreaker", "NonFiniteOutput",
    "WatchdogTimeout", "run_with_timeout",
]
