"""Tensor functor: the user-facing data-bridge abstraction (§III-A-1).

A :class:`TensorFunctor` is the validated, executable form of a
``tensor functor`` directive.  It can be constructed from directive
source text or programmatically, and applied to memory by
:mod:`repro.bridge.tensor_map`.
"""

from __future__ import annotations

from ..directives.ast_nodes import FunctorDecl
from ..directives.parser import parse_directive
from ..directives.semantic import AnalyzedFunctor, SemanticAnalyzer

__all__ = ["TensorFunctor"]


class TensorFunctor:
    """Executable tensor functor (LHS shape law + RHS access law)."""

    def __init__(self, analyzed: AnalyzedFunctor):
        self._analyzed = analyzed

    # -- constructors ------------------------------------------------------
    @classmethod
    def parse(cls, source: str) -> "TensorFunctor":
        """Build from directive text, e.g.::

            #pragma approx tensor functor(ifnctr: \\
                [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
        """
        node = parse_directive(source)
        if not isinstance(node, FunctorDecl):
            raise TypeError(f"expected a tensor functor directive, got "
                            f"{type(node).__name__}")
        analyzer = SemanticAnalyzer()
        analyzer.analyze_functor(node)
        analyzer.raise_if_errors()
        return cls(analyzer.functors[node.name])

    @classmethod
    def from_analyzed(cls, analyzed: AnalyzedFunctor) -> "TensorFunctor":
        return cls(analyzed)

    # -- introspection ----------------------------------------------------
    @property
    def name(self) -> str:
        return self._analyzed.name

    @property
    def symbols(self) -> tuple:
        """Symbolic constants in LHS order (sweep-dim order)."""
        return self._analyzed.symbols

    @property
    def feature_shape(self) -> tuple:
        """Trailing concrete LHS dims (per-entry feature layout)."""
        return self._analyzed.feature_shape

    @property
    def total_features(self) -> int:
        return self._analyzed.total_features

    @property
    def analyzed(self) -> AnalyzedFunctor:
        return self._analyzed

    def __repr__(self):
        return (f"TensorFunctor({self.name!r}, symbols={self.symbols}, "
                f"features={self.feature_shape})")
