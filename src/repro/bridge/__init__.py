"""``repro.bridge`` — the HPAC-ML data bridge (§III-A-1, Fig. 4)."""

from .slices import SweepRange, SliceView, BridgeError, wrap_slice, sweep_shape
from .functor import TensorFunctor
from .tensor_map import (ConcretizedMap, concretize, evaluate_ranges,
                         MapSpec, parse_map)

__all__ = ["SweepRange", "SliceView", "BridgeError", "wrap_slice",
           "sweep_shape", "TensorFunctor", "ConcretizedMap", "concretize",
           "evaluate_ranges", "MapSpec", "parse_map"]
