"""Tensor mapping: memory concretization, composition, and scatter-back.

Implements the ``tensor map`` semantics of §III/IV: applying a functor
to application memory sweeps the symbolic constants over the concrete
ranges of the map target (*memory concretization*), wraps each RHS
slice as a strided view (:mod:`repro.bridge.slices`), and — for the
``to`` direction — performs *tensor composition*: flattening window
dims and concatenating the RHS views along the feature axis to build
the single LHS tensor.  The ``from`` direction reverses the flow,
scattering a model-output tensor back into application memory through
the same (writable) views without composition, exactly as §IV-A notes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..directives.ast_nodes import SliceSpec, TensorMapDirective
from ..directives.parser import parse_directive
from ..directives.semantic import SemanticError, linearize
from .functor import TensorFunctor
from .slices import BridgeError, SliceView, SweepRange, sweep_shape, wrap_slice

__all__ = ["ConcretizedMap", "concretize", "evaluate_ranges", "MapSpec",
           "parse_map"]


def evaluate_ranges(spec: SliceSpec, env: dict) -> list[SweepRange]:
    """Evaluate a cs-specifier against declared integer variables.

    E.g. ``[1:N-1, 1:M-1]`` with ``env={'N': 64, 'M': 32}`` yields
    ``[SweepRange(1, 63), SweepRange(1, 31)]``.
    """
    # The region environment also carries arrays and flags; only plain
    # integers participate in slice arithmetic.
    env = {k: int(v) for k, v in env.items()
           if isinstance(v, (int, np.integer))}
    ranges = []
    for sl in spec.slices:
        if sl.is_point:
            raise BridgeError(f"map target dims must be ranges, got point "
                              f"access at {sl.loc}")
        lo = linearize(sl.start, env)
        hi = linearize(sl.stop, env)
        step = linearize(sl.step, env) if sl.step is not None else None
        if not lo.is_constant() or not hi.is_constant() or \
                (step is not None and not step.is_constant()):
            unresolved = set(lo.symbols) | set(hi.symbols) | \
                (set(step.symbols) if step is not None else set())
            raise BridgeError(
                f"map target range uses undeclared variables {sorted(unresolved)}")
        ranges.append(SweepRange(lo.const, hi.const,
                                 step.const if step is not None else 1))
    return ranges


@dataclass(frozen=True)
class MapSpec:
    """A parsed+validated ``tensor map`` directive bound to a functor."""

    direction: str            # 'to' | 'from'
    functor: TensorFunctor
    array_name: str
    target_spec: SliceSpec


def parse_map(source: str, functors: dict) -> list[MapSpec]:
    """Parse a ``tensor map`` directive; resolve its functor by name.

    Returns one :class:`MapSpec` per map target (the grammar allows a
    target list).
    """
    node = parse_directive(source)
    if not isinstance(node, TensorMapDirective):
        raise TypeError(f"expected a tensor map directive, got "
                        f"{type(node).__name__}")
    functor = functors.get(node.functor)
    if functor is None:
        raise SemanticError(f"tensor map references undeclared functor "
                            f"{node.functor!r}")
    if not isinstance(functor, TensorFunctor):
        functor = TensorFunctor.from_analyzed(functor)
    return [MapSpec(direction=node.direction, functor=functor,
                    array_name=t.array, target_spec=t.spec)
            for t in node.targets]


class ConcretizedMap:
    """A functor applied to one concrete array over concrete ranges.

    The ``to`` direction uses :meth:`gather` → LHS tensor (one copy, at
    composition).  The ``from`` direction uses :meth:`scatter` to write
    a tensor back through writable views (no composition step).
    """

    def __init__(self, functor: TensorFunctor, array: np.ndarray,
                 ranges: list[SweepRange], writable: bool = False):
        self.functor = functor
        self.array = array
        if len(ranges) != len(functor.symbols):
            raise BridgeError(
                f"functor {functor.name!r} declares {len(functor.symbols)} "
                f"symbols but {len(ranges)} ranges were supplied")
        self.bindings = dict(zip(functor.symbols, ranges))
        self.ranges = list(ranges)
        self.writable = writable
        self._views: list[SliceView] | None = None

    # -- shapes -----------------------------------------------------------
    @property
    def sweep_shape(self) -> tuple:
        return sweep_shape(self.ranges)

    @property
    def entry_count(self) -> int:
        n = 1
        for s in self.sweep_shape:
            n *= s
        return n

    @property
    def tensor_shape(self) -> tuple:
        """Shape of the composed LHS tensor: sweep dims + feature dims."""
        return self.sweep_shape + self.functor.feature_shape

    @property
    def flat_shape(self) -> tuple:
        """Model-facing layout: (batch, *features)."""
        return (self.entry_count,) + self.functor.feature_shape

    # -- wrapping -----------------------------------------------------------
    def views(self) -> list[SliceView]:
        """Tensor-wrap every RHS slice (zero-copy; cached)."""
        if self._views is None:
            analyzed = self.functor.analyzed
            self._views = [
                wrap_slice(self.array, sl, analyzed.symbols, self.bindings,
                           writable=self.writable)
                for sl in analyzed.rhs
            ]
        return self._views

    # -- to-direction ----------------------------------------------------------
    def gather(self, flatten_batch: bool = False) -> np.ndarray:
        """Compose the LHS tensor from the RHS views (the one copy).

        With ``flatten_batch`` the sweep dims collapse into a single
        batch axis — the layout inference engines consume.
        """
        views = self.views()
        sweep = self.sweep_shape
        parts = []
        for sv in views:
            flat = sv.view.reshape(sweep + (sv.feature_count,))
            parts.append(flat)
        if len(parts) == 1:
            composed = np.ascontiguousarray(parts[0])
        else:
            composed = np.concatenate(parts, axis=-1)
        total = composed.shape[-1]
        expected = self.functor.total_features
        if total != expected:
            raise BridgeError(
                f"composition produced {total} features, LHS declares "
                f"{expected}")
        if flatten_batch:
            return composed.reshape(self.flat_shape)
        return composed.reshape(self.tensor_shape)

    # -- from-direction -----------------------------------------------------------
    def scatter(self, tensor: np.ndarray) -> None:
        """Write an LHS-shaped (or batch-flattened) tensor back to memory."""
        if not self.writable:
            raise BridgeError("scatter requires a writable (from-direction) map")
        tensor = np.asarray(tensor)
        sweep = self.sweep_shape
        total = self.functor.total_features
        if tensor.shape == self.tensor_shape or tensor.shape == self.flat_shape:
            flat = tensor.reshape(sweep + (total,))
        elif tensor.shape == (self.entry_count, total):
            flat = tensor.reshape(sweep + (total,))
        else:
            raise BridgeError(
                f"scatter tensor shape {tensor.shape} matches neither LHS "
                f"shape {self.tensor_shape} nor batch shape {self.flat_shape}")
        offset = 0
        for sv in self.views():
            width = sv.feature_count
            chunk = flat[..., offset:offset + width]
            sv.view[...] = chunk.reshape(sweep + sv.window_shape)
            offset += width
        if offset != total:
            raise BridgeError(
                f"scatter consumed {offset} features of {total}")


def concretize(functor: TensorFunctor, array: np.ndarray,
               ranges: list[SweepRange] | SliceSpec, env: dict | None = None,
               writable: bool = False) -> ConcretizedMap:
    """Memory concretization: bind a functor to memory and sweep ranges.

    ``ranges`` is either explicit :class:`SweepRange` objects or a
    cs-specifier AST evaluated against ``env``.  Deferred integer
    variables in the functor (e.g. ``0:H``) resolve against ``env`` —
    the same binding a compiler performs for program variables.
    """
    if isinstance(ranges, SliceSpec):
        ranges = evaluate_ranges(ranges, env or {})
    if not functor.analyzed.resolved:
        int_env = {k: int(v) for k, v in (env or {}).items()
                   if isinstance(v, (int, np.integer))}
        functor = TensorFunctor.from_analyzed(functor.analyzed.resolve(int_env))
    return ConcretizedMap(functor, array, list(ranges), writable=writable)
