"""Fig. 4 pipeline: symbolic shape extraction/resolution, tensor wrapping.

Given an analyzed functor, a target ndarray, and the concrete sweep
ranges bound to each symbolic constant, this module realizes each RHS
slice as a **zero-copy strided view** of application memory:

1. *Symbolic shape extraction* — per RHS slice, compute the base index
   in every array dimension (the paper's per-dimension offsets) and the
   element count each dimension contributes.
2. *Symbolic shape resolution* — derive the view's shape: one **sweep
   dim** per symbolic constant (extent = number of sweep points) plus
   one **window dim** per range sub-slice (extent = its constant width).
3. *Tensor wrapping* — materialize the view via NumPy strides over the
   original buffer: stride of a sweep dim is the sum over array dims of
   ``array_stride[d] * coeff * sweep_step``; no data is copied.

Composition (concatenating RHS views into the LHS tensor) lives in
:mod:`repro.bridge.tensor_map`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..directives.ast_nodes import LinearForm
from ..directives.semantic import AnalyzedFunctor, AnalyzedSlice

__all__ = ["SweepRange", "SliceView", "BridgeError", "wrap_slice",
           "sweep_shape"]


class BridgeError(RuntimeError):
    """Raised when a functor cannot be applied to the given memory."""


@dataclass(frozen=True)
class SweepRange:
    """Concrete range bound to one symbolic constant: ``lo:hi:step``."""

    lo: int
    hi: int
    step: int = 1

    def __post_init__(self):
        if self.step <= 0:
            raise BridgeError(f"sweep step must be positive: {self.step}")
        if self.hi <= self.lo:
            raise BridgeError(f"empty sweep range [{self.lo}:{self.hi}]")

    @property
    def count(self) -> int:
        return (self.hi - self.lo + self.step - 1) // self.step


def sweep_shape(ranges: list[SweepRange]) -> tuple:
    return tuple(r.count for r in ranges)


@dataclass
class SliceView:
    """One RHS slice wrapped over application memory.

    ``view`` has shape ``sweep_shape + window_shape``; it aliases the
    target array (no copy).  ``window_shape`` flattens to the slice's
    feature contribution.
    """

    view: np.ndarray
    sweep_dims: int
    window_shape: tuple

    @property
    def feature_count(self) -> int:
        n = 1
        for w in self.window_shape:
            n *= w
        return n


def _eval_at_minimum(form: LinearForm, bindings: dict) -> int:
    """Evaluate a linear form with every symbol at its sweep minimum."""
    value = form.const
    for sym, coeff in form.coeffs:
        value += coeff * bindings[sym].lo
    return value


def wrap_slice(array: np.ndarray, analyzed: AnalyzedSlice,
               symbols: tuple, bindings: dict, writable: bool = False) -> SliceView:
    """Tensor-wrap one RHS slice: build its strided view over ``array``.

    Parameters
    ----------
    array:
        Target application array (must be C-contiguous so the buffer
        can be re-wrapped; scientific application state arrays are).
    analyzed:
        The semantic analysis of the RHS slice.
    symbols:
        Functor symbol order (defines sweep-dim order).
    bindings:
        ``{symbol: SweepRange}`` from the map target's cs-specifier.
    writable:
        Expose a writable view (used by ``from``-direction maps).
    """
    if len(analyzed.dims) != array.ndim:
        raise BridgeError(
            f"RHS slice has {len(analyzed.dims)} dims but target array has "
            f"{array.ndim}")
    if not array.flags.c_contiguous:
        raise BridgeError("target array must be C-contiguous")
    missing = [s for s in symbols if s not in bindings]
    if missing:
        raise BridgeError(f"unbound symbolic constants: {missing}")

    ndim = array.ndim
    # base index per array dim (symbolic shape extraction)
    base = [0] * ndim
    # sweep stride contributions: per symbol, per array dim, index step
    sweep_steps = {s: [0] * ndim for s in symbols}
    window_dims: list[tuple[int, int]] = []  # (array_dim, extent, step) triples

    for d, dim in enumerate(analyzed.dims):
        base[d] = _eval_at_minimum(dim.start, bindings)
        for sym, coeff in dim.start.coeffs:
            sweep_steps[sym][d] += coeff * bindings[sym].step
        if not dim.is_point:
            window_dims.append((d, dim.extent, dim.step))

    # Symbolic shape resolution: view shape and index-space strides.
    shape: list[int] = []
    index_steps: list[list[int]] = []  # per view dim: array-index advance per dim
    for sym in symbols:
        rng = bindings[sym]
        shape.append(rng.count)
        index_steps.append(sweep_steps[sym])
    window_shape: list[int] = []
    for d, extent, step in window_dims:
        steps = [0] * ndim
        steps[d] = step
        shape.append(extent)
        index_steps.append(steps)
        window_shape.append(extent)

    # Bounds validation per array dim (precise min/max reachable index).
    for d in range(ndim):
        lo = hi = base[d]
        for v, dim_shape in enumerate(shape):
            reach = (dim_shape - 1) * index_steps[v][d]
            if reach < 0:
                lo += reach
            else:
                hi += reach
        if lo < 0 or hi >= array.shape[d]:
            raise BridgeError(
                f"slice sweeps array dim {d} over indices [{lo}, {hi}] "
                f"outside [0, {array.shape[d]})")

    strides = tuple(
        sum(array.strides[d] * index_steps[v][d] for d in range(ndim))
        for v in range(len(shape)))
    offset = sum(base[d] * array.strides[d] for d in range(ndim))

    view = np.ndarray(shape=tuple(shape), dtype=array.dtype, buffer=array,
                      offset=offset, strides=strides)
    if not writable:
        view.flags.writeable = False
    return SliceView(view=view, sweep_dims=len(symbols),
                     window_shape=tuple(window_shape))
