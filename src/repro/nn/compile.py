"""Compiled inference fast path: ``Module`` -> flat NumPy step plan.

The graph path (:meth:`Module.__call__`) builds an autodiff ``Tensor``
per intermediate even under ``no_grad`` — dozens of Python-level
allocations per forward.  For deployed surrogates that is pure
overhead: inference is a fixed pipeline of dense kernels over known
weights.  :func:`compile_inference` lowers a model **once** through
the shared plan IR (:mod:`repro.nn.plan`) and wraps the forward steps
in a :class:`CompiledPlan`:

* **fused affine+activation**: ``Linear`` followed by
  ReLU/Tanh/Sigmoid/LeakyReLU becomes a single ``np.dot`` into a
  preallocated scratch buffer plus an in-place activation;
* **preallocated scratch**: per-step output buffers are reused across
  calls (keyed by batch size), so steady-state inference performs no
  Python-level array allocation on the MLP path;
* **zero Tensor wrappers**: the plan never touches the autodiff graph.

The per-layer emitters live in the :mod:`repro.nn.plan` lowering
registry, shared with :mod:`repro.nn.compile_train` — this module only
selects eval-mode semantics: dropout is identity and batch-norm uses
its running statistics.  The plan holds references to the model's
parameter arrays, so in-place optimizer updates flow through
automatically; rebinding a parameter (``load_state_dict``) flips
:meth:`CompiledPlan.stale` and callers recompile.  Plans carry the
model's structural fingerprint, letting callers (the engine's plan
cache) re-adopt warm scratch buffers across a same-structure recompile.

The returned array may be a scratch buffer owned by the plan — it is
valid until the next call with the same batch size; copy it to keep it.
"""

from __future__ import annotations

import numpy as np

from . import layers as L
from .plan import (FleetPlan, UnsupportedLayerError, fleet_fingerprint,
                   lower_model, narrow_plan_steps, structural_fingerprint)

__all__ = ["compile_inference", "compile_fleet_inference",
           "CompiledPlan", "FleetPlan", "fleet_fingerprint",
           "UnsupportedLayerError"]


class CompiledPlan:
    """A flat inference step plan emitted by :func:`compile_inference`."""

    __slots__ = ("_steps", "_fns", "_watch", "_struct_watch", "_keys",
                 "n_layers", "n_fused", "summary", "fingerprint", "dtype",
                 "_cast")

    def __init__(self, steps, watch, struct_watch, n_layers, n_fused,
                 summary, fingerprint, dtype=np.float64):
        self._steps = tuple(steps)
        # Hot steps hand out specialized closures (constants bound,
        # scratch dict captured); the rest run their bound method.
        self._fns = tuple(step.inference_fn() or step.forward
                          for step in self._steps)
        self._watch = tuple(watch)
        self._struct_watch = tuple(struct_watch)
        self._keys: set = set()        # batch sizes with live scratch
        self.n_layers = n_layers
        self.n_fused = n_fused
        self.summary = tuple(summary)
        #: Structural digest of the lowered model (layer types, shapes,
        #: hyperparameters) plus the plan dtype when narrowed.  Equal
        #: fingerprints => interchangeable step/scratch layout.
        self.fingerprint = fingerprint
        #: Execution dtype of the plan's constants and scratch.
        self.dtype = np.dtype(dtype)
        # Narrowed plans cast the input once at entry; the float64
        # default keeps the historical float16-only coercion verbatim.
        self._cast = None if self.dtype == np.float64 else self.dtype

    def stale(self) -> bool:
        """True when the plan no longer describes the model.

        Trips on rebinding of a watched array (``load_state_dict``) and
        on structural mutation of any ``Sequential`` in the walk
        (``append``, layer-list rebinding).  In-place value updates
        (optimizer steps) flow through the captured arrays and do
        **not** flip staleness.  In-place *replacement* of a layer at
        an existing index is the one mutation this cannot see.
        """
        for obj, name, arr in self._watch:
            if getattr(obj, name) is not arr:
                return True
        for ref, layer_list, n_layers in self._struct_watch:
            seq = ref()
            if seq is None or seq.layers is not layer_list or \
                    len(layer_list) != n_layers:
                return True
        return False

    def adopt_scratch(self, old: "CompiledPlan | None") -> bool:
        """Take over a same-fingerprint predecessor's scratch buffers.

        After a recompile that preserved the structure (hot-swap /
        ``load_state_dict``), the old plan's per-batch buffers have
        exactly the shapes this plan will allocate — adopting them
        keeps the first post-swap inference warm.  Returns whether the
        adoption happened.
        """
        if old is None or old is self or \
                old.fingerprint != self.fingerprint or \
                old.dtype != self.dtype or \
                len(old._steps) != len(self._steps):
            return False
        for mine, theirs in zip(self._steps, old._steps):
            if type(mine) is not type(theirs):
                return False
        for mine, theirs in zip(self._steps, old._steps):
            # In place: specialized step closures capture the dict.
            mine._bufs.update(theirs._bufs)
        self._keys = set(old._keys)
        return True

    def __call__(self, x) -> np.ndarray:
        x = np.asarray(x)
        if self._cast is not None:
            if x.dtype != self._cast:
                x = x.astype(self._cast)
        elif x.dtype == np.float16:    # mirror Tensor's dtype coercion
            x = x.astype(np.float64)
        key = x.shape[0] if x.ndim else 1
        if key not in self._keys:
            if len(self._keys) > 16:
                for step in self._steps:
                    step.clear()
                self._keys.clear()
            self._keys.add(key)
        for fn in self._fns:
            x = fn(x, key)
        return x

    def profile(self, x) -> tuple:
        """Run the plan once, timing each step individually.

        Returns ``(output, timings)`` where ``timings`` is a list of
        ``{"step", "seconds"}`` dicts aligned with :attr:`summary`.
        The per-step clock reads make this slower than :meth:`__call__`
        — it is a diagnostic surface (``repro stats`` / the
        observability benchmarks), not the serving path.
        """
        import time
        x = np.asarray(x)
        if self._cast is not None:
            if x.dtype != self._cast:
                x = x.astype(self._cast)
        elif x.dtype == np.float16:
            x = x.astype(np.float64)
        key = x.shape[0] if x.ndim else 1
        if key not in self._keys:
            if len(self._keys) > 16:
                for step in self._steps:
                    step.clear()
                self._keys.clear()
            self._keys.add(key)
        timings = []
        for label, fn in zip(self.summary, self._fns):
            start = time.perf_counter()
            x = fn(x, key)
            timings.append({"step": label,
                            "seconds": time.perf_counter() - start})
        return x, timings

    def __repr__(self):
        return (f"CompiledPlan(layers={self.n_layers}, "
                f"steps={len(self._steps)}, fused={self.n_fused})")


def compile_inference(model: L.Module, dtype=np.float64) -> CompiledPlan:
    """Compile ``model`` into a flat NumPy inference plan.

    ``dtype=np.float32`` emits a *narrowed* plan: weights and constants
    are cast exactly once here and every kernel then runs natively in
    float32 — roughly half the memory traffic on the GEMM-bound shapes.
    The float64 default is untouched by the narrowing machinery and
    stays bitwise-identical to the historical plans (same fingerprint,
    same step constants, same input coercion).

    Raises :class:`UnsupportedLayerError` for layers without a lowering
    (custom modules outside the serialized zoo) — and, for narrowed
    plans, for step types outside the dtype-safe MLP set (see
    :func:`~repro.nn.plan.narrow_plan_steps`) — callers fall back to
    the graph path / the float64 plan.
    """
    dtype = np.dtype(dtype)
    ctx, struct_watch, n_layers = lower_model(model, training=False)
    if dtype == np.float64:
        extra = ("infer",)
    elif dtype == np.float32:
        narrow_plan_steps(ctx.steps, dtype)
        extra = ("infer", "f32")
    else:
        raise ValueError(
            f"inference plans support float64/float32, not {dtype}")
    return CompiledPlan(ctx.steps, ctx.watch, struct_watch, n_layers,
                        ctx.n_fused, ctx.summary,
                        structural_fingerprint(model, extra=extra),
                        dtype=dtype)


def compile_fleet_inference(models, dtype=np.float64) -> FleetPlan:
    """Compile K same-fleet-fingerprint models into one stacked plan.

    Stacked float64 outputs are bitwise-equal to each member's own
    :func:`compile_inference` forward; ``dtype=np.float32`` stacks a
    narrowed slab (member weights cast on the row copies).  Raises
    :class:`UnsupportedLayerError` on structurally mixed groups or
    layers without a fleet lowering (callers keep per-model plans).
    """
    return FleetPlan(models, dtype=dtype)
