"""Compiled inference fast path: ``Module`` -> flat NumPy closure.

The graph path (:meth:`Module.__call__`) builds an autodiff ``Tensor``
per intermediate even under ``no_grad`` — dozens of Python-level
allocations per forward.  For deployed surrogates that is pure
overhead: inference is a fixed pipeline of dense kernels over known
weights.  :func:`compile_inference` walks a model **once** and emits a
:class:`CompiledPlan` — a list of step closures over raw ndarrays with:

* **fused affine+activation**: ``Linear`` followed by
  ReLU/Tanh/Sigmoid/LeakyReLU becomes a single ``np.dot`` into a
  preallocated scratch buffer plus an in-place activation;
* **preallocated scratch**: per-step output buffers are reused across
  calls (keyed by batch size), so steady-state inference performs no
  Python-level array allocation on the MLP path;
* **zero Tensor wrappers**: the plan never touches the autodiff graph.

Inference semantics are fixed at *eval* mode: dropout is identity and
batch-norm uses its running statistics.  The plan holds references to
the model's parameter arrays, so in-place optimizer updates flow
through automatically; rebinding a parameter (``load_state_dict``)
flips :meth:`CompiledPlan.stale` and callers recompile.

The returned array may be a scratch buffer owned by the plan — it is
valid until the next call with the same batch size; copy it to keep it.
"""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import layers as L
from .recurrent import GRU

__all__ = ["compile_inference", "CompiledPlan", "UnsupportedLayerError"]


class UnsupportedLayerError(TypeError):
    """A layer has no compiled lowering; callers fall back to the graph."""


# ----------------------------------------------------------------------
# In/out-of-place activation kernels (must match the Tensor ops exactly)
# ----------------------------------------------------------------------

#: 0-d operand: saves the per-call scalar->array conversion in ufuncs.
_ZERO = np.zeros(())


def _relu_in(buf, _zero=_ZERO):
    np.maximum(buf, _zero, out=buf)


def _relu_out(x, buf, _zero=_ZERO):
    np.maximum(x, _zero, out=buf)


def _tanh_in(buf):
    np.tanh(buf, out=buf)


def _tanh_out(x, buf):
    np.tanh(x, out=buf)


def _sigmoid_in(buf):
    # 1 / (1 + exp(-x)), the Tensor.sigmoid formula, fully in place.
    np.negative(buf, out=buf)
    np.exp(buf, out=buf)
    buf += 1.0
    np.reciprocal(buf, out=buf)


def _sigmoid_out(x, buf):
    np.negative(x, out=buf)
    np.exp(buf, out=buf)
    buf += 1.0
    np.reciprocal(buf, out=buf)


def _leaky_in(slope):
    def apply(buf):
        np.multiply(buf, np.where(buf > 0, 1.0, slope), out=buf)
    return apply


def _leaky_out(slope):
    def apply(x, buf):
        np.multiply(x, np.where(x > 0, 1.0, slope), out=buf)
    return apply


def _activation_kernels(layer):
    """(in_place, out_of_place) kernels for an activation layer."""
    if isinstance(layer, L.ReLU):
        return _relu_in, _relu_out
    if isinstance(layer, L.Tanh):
        return _tanh_in, _tanh_out
    if isinstance(layer, L.Sigmoid):
        return _sigmoid_in, _sigmoid_out
    if isinstance(layer, L.LeakyReLU):
        return _leaky_in(layer.slope), _leaky_out(layer.slope)
    return None


# ----------------------------------------------------------------------
# Step factories
# ----------------------------------------------------------------------

def _affine_step(slot, weight, bias, act_in_place):
    """Fused ``y = act(x @ W.T + b)`` into a per-batch scratch buffer.

    ``weight`` is the parameter's data array; the transposed view is
    taken once here so the per-call work is a single BLAS dispatch.
    The bias is pre-shaped to a ``(1, out)`` row so the in-place add is
    a same-shape ufunc sweep (broadcast setup costs more than the add).
    """
    wt = weight.T                     # view: live updates flow through
    out_features = wt.shape[1]
    bias_row = bias.reshape(1, -1) if bias is not None else None
    wt_narrow = weight.dtype != np.float64

    def step(x, bufs, dot=np.dot, empty=np.empty, add=np.add):
        if x.ndim != 2:               # rare shapes: correctness over speed
            y = np.matmul(x, wt)
            if bias is not None:
                y = y + bias
            if act_in_place is not None:
                act_in_place(y)
            return y
        buf = bufs[slot]
        # With float64 weights the result dtype is float64 for any
        # input, so only non-f64 weights need the per-call dtype check.
        if buf is None or buf.shape[0] != x.shape[0] or \
                (wt_narrow and buf.dtype != np.result_type(x.dtype, wt.dtype)):
            buf = bufs[slot] = empty(
                (x.shape[0], out_features),
                dtype=np.result_type(x.dtype, wt.dtype))
        dot(x, wt, out=buf)
        if bias_row is not None:
            add(buf, bias_row, out=buf)
        if act_in_place is not None:
            act_in_place(buf)
        return buf

    return step


def _activation_step(slot, act_out_of_place):
    """Standalone activation into scratch (never mutates its input)."""

    def step(x, bufs):
        buf = bufs[slot]
        if buf is None or buf.shape != x.shape or buf.dtype != x.dtype:
            buf = bufs[slot] = np.empty_like(x)
        act_out_of_place(x, buf)
        return buf

    return step


def _standardize_step(layer):
    mean, std = layer.mean, layer.std

    def step(x, bufs):
        return (x - mean) * (1.0 / std)

    return step


def _destandardize_step(layer):
    mean, std = layer.mean, layer.std

    def step(x, bufs):
        return x * std + mean

    return step


def _flatten_step(start_dim):
    def step(x, bufs):
        return x.reshape(x.shape[:start_dim] + (-1,))

    return step


def _conv2d_step(layer, act_in_place):
    weight = layer.weight.data
    bias = layer.bias.data if layer.bias is not None else None
    stride, padding = layer.stride, layer.padding
    c_out, _c_in, kh, kw = weight.shape
    wmat_t = weight.reshape(c_out, -1).T       # view over the parameter

    def step(x, bufs):
        cols = F.im2col(x, kh, kw, stride, padding)
        out = cols @ wmat_t                    # (N, oh, ow, C_out)
        out = out.transpose(0, 3, 1, 2)
        if bias is not None:
            out = out + bias.reshape(1, -1, 1, 1)
        if act_in_place is not None:
            out = np.ascontiguousarray(out)
            act_in_place(out)
        return out

    return step


def _conv1d_step(layer, act_in_place):
    weight = layer.weight.data
    bias = layer.bias.data if layer.bias is not None else None
    stride = layer.stride
    c_out, _c_in, k = weight.shape
    wmat_t = weight.reshape(c_out, -1).T

    def step(x, bufs):
        n, c_in, length = x.shape
        x4 = x.reshape(n, c_in, 1, length)
        cols = F.im2col(x4, 1, k, stride, 0)
        out = cols @ wmat_t                    # (N, 1, oL, C_out)
        out = out.transpose(0, 3, 1, 2)
        if bias is not None:
            out = out + bias.reshape(1, -1, 1, 1)
        out = out.reshape(n, c_out, out.shape[-1])
        if act_in_place is not None:
            out = np.ascontiguousarray(out)
            act_in_place(out)
        return out

    return step


def _max_pool2d_step(kernel, stride):
    def step(x, bufs):
        out, _arg, _oh, _ow = F.max_pool2d_raw(x, kernel, stride)
        return out

    return step


def _max_pool1d_step(kernel, stride):
    def step(x, bufs):
        if kernel == 1:
            return x                 # 1-wide windows at stride 1: identity
        out, _arg = F.max_pool1d_raw(x, kernel, stride)
        return out

    return step


def _avg_pool2d_step(kernel, stride):
    def step(x, bufs):
        return F.avg_pool2d_raw(x, kernel, stride)

    return step


def _croppad2d_step(height, width):
    def step(x, bufs):
        h, w = x.shape[-2], x.shape[-1]
        if h > height or w > width:
            x = x[..., :min(h, height), :min(w, width)]
            h, w = x.shape[-2], x.shape[-1]
        if h < height or w < width:
            pad = [(0, 0)] * (x.ndim - 2)
            pad += [(0, height - h), (0, width - w)]
            x = np.pad(x, pad)
        return x

    return step


def _batchnorm1d_step(layer):
    weight, bias = layer.weight.data, layer.bias.data
    eps = layer.eps

    def step(x, bufs):
        mu = layer.running_mean.reshape(1, -1)
        denom = np.sqrt(layer.running_var.reshape(1, -1) + eps)
        return (x - mu) / denom * weight + bias

    return step


def _layernorm_step(layer):
    weight, bias = layer.weight.data, layer.bias.data
    eps = layer.eps

    def step(x, bufs):
        n = x.shape[-1]
        # Matches Tensor.mean/var: sum * (1/n), biased variance.
        mu = x.sum(axis=-1, keepdims=True) * (1.0 / n)
        centered = x - mu
        var = (centered * centered).sum(axis=-1, keepdims=True) * (1.0 / n)
        return centered / np.sqrt(var + eps) * weight + bias

    return step


def _gru_step(layer):
    """Unrolled GRU forward over raw ndarrays.

    Replays the graph path's exact operation sequence (per-timestep
    ``x_t @ W_ih^T + b_ih`` / ``h @ W_hh^T + b_hh``, the 1/(1+exp(-x))
    sigmoid, ``h = n + z*(h - n)``) so results match to the same
    tolerance as the MLP lowerings.  Weight transposes are views over
    the parameter arrays: in-place optimizer updates flow through.
    """
    cell = layer.cell
    w_ih_t = cell.weight_ih.data.T
    w_hh_t = cell.weight_hh.data.T
    b_ih = cell.bias_ih.data
    b_hh = cell.bias_hh.data
    hs = cell.hidden_size
    return_sequence = layer.return_sequence

    def step(x, bufs):
        if x.ndim != 3:
            raise ValueError(f"GRU expects (batch, seq, features), got "
                             f"{x.shape}")
        batch, seq_len = x.shape[0], x.shape[1]
        h = np.zeros((batch, hs))
        outputs = [] if return_sequence else None
        for t in range(seq_len):
            gi = x[:, t, :] @ w_ih_t + b_ih
            gh = h @ w_hh_t + b_hh
            r = 1.0 / (1.0 + np.exp(-(gi[:, :hs] + gh[:, :hs])))
            z = 1.0 / (1.0 + np.exp(-(gi[:, hs:2 * hs] + gh[:, hs:2 * hs])))
            n = np.tanh(gi[:, 2 * hs:] + r * gh[:, 2 * hs:])
            h = n + z * (h - n)
            if outputs is not None:
                outputs.append(h)
        if outputs is not None:
            return np.stack(outputs, axis=1)
        return h

    return step


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------

class CompiledPlan:
    """A flat inference closure emitted by :func:`compile_inference`."""

    __slots__ = ("_steps", "_watch", "_struct_watch", "_buffers", "n_slots",
                 "n_layers", "n_fused", "summary")

    def __init__(self, steps, watch, struct_watch, n_slots, n_layers,
                 n_fused, summary):
        self._steps = tuple(steps)
        self._watch = tuple(watch)
        self._struct_watch = tuple(struct_watch)
        self._buffers: dict = {}       # batch size -> per-slot scratch
        self.n_slots = n_slots
        self.n_layers = n_layers
        self.n_fused = n_fused
        self.summary = tuple(summary)

    def stale(self) -> bool:
        """True when the plan no longer describes the model.

        Trips on rebinding of a watched array (``load_state_dict``) and
        on structural mutation of any ``Sequential`` in the walk
        (``append``, layer-list rebinding).  In-place value updates
        (optimizer steps) flow through the captured arrays and do
        **not** flip staleness.  In-place *replacement* of a layer at
        an existing index is the one mutation this cannot see.
        """
        for obj, name, arr in self._watch:
            if getattr(obj, name) is not arr:
                return True
        for seq, layer_list, n_layers in self._struct_watch:
            if seq.layers is not layer_list or len(layer_list) != n_layers:
                return True
        return False

    def __call__(self, x) -> np.ndarray:
        x = np.asarray(x)
        if x.dtype == np.float16:      # mirror Tensor's dtype coercion
            x = x.astype(np.float64)
        key = x.shape[0] if x.ndim else 1
        bufs = self._buffers.get(key)
        if bufs is None:
            if len(self._buffers) > 16:
                self._buffers.clear()
            bufs = self._buffers[key] = [None] * self.n_slots
        for step in self._steps:
            x = step(x, bufs)
        return x

    def __repr__(self):
        return (f"CompiledPlan(layers={self.n_layers}, "
                f"steps={len(self._steps)}, fused={self.n_fused})")


def _flatten_layers(model: L.Module, seqs: list) -> list:
    if isinstance(model, L.Sequential):
        seqs.append((model, model.layers, len(model.layers)))
        out = []
        for layer in model.layers:
            out.extend(_flatten_layers(layer, seqs))
        return out
    return [model]


_PASSTHROUGH = (L.Identity, L.Dropout)


def compile_inference(model: L.Module) -> CompiledPlan:
    """Compile ``model`` into a flat NumPy inference closure.

    Raises :class:`UnsupportedLayerError` for layers without a lowering
    (custom modules outside the serialized zoo) — callers fall back to
    the graph path.
    """
    struct_watch: list = []
    layers = _flatten_layers(model, struct_watch)
    steps, watch, summary = [], [], []
    n_slots = 0
    n_fused = 0

    def watch_layer(layer):
        for _name, p in layer.named_parameters():
            watch.append((p, "data", p.data))

    i = 0
    while i < len(layers):
        layer = layers[i]
        nxt = layers[i + 1] if i + 1 < len(layers) else None
        fuse = _activation_kernels(nxt) if nxt is not None else None

        if isinstance(layer, _PASSTHROUGH):
            summary.append(f"{type(layer).__name__}: skipped (eval)")
            i += 1
            continue
        if isinstance(layer, L.Linear):
            act_in = fuse[0] if fuse else None
            steps.append(_affine_step(n_slots, layer.weight.data,
                                      layer.bias.data
                                      if layer.bias is not None else None,
                                      act_in))
            n_slots += 1
            watch_layer(layer)
            if fuse:
                summary.append(f"Linear+{type(nxt).__name__}: fused affine")
                n_fused += 1
                i += 2
            else:
                summary.append("Linear: affine")
                i += 1
            continue
        if isinstance(layer, L.Conv2d):
            steps.append(_conv2d_step(layer, fuse[0] if fuse else None))
            watch_layer(layer)
            if fuse:
                summary.append(f"Conv2d+{type(nxt).__name__}: fused im2col")
                n_fused += 1
                i += 2
            else:
                summary.append("Conv2d: im2col")
                i += 1
            continue
        if isinstance(layer, L.Conv1d):
            steps.append(_conv1d_step(layer, fuse[0] if fuse else None))
            watch_layer(layer)
            if fuse:
                summary.append(f"Conv1d+{type(nxt).__name__}: fused im2col")
                n_fused += 1
                i += 2
            else:
                summary.append("Conv1d: im2col")
                i += 1
            continue

        if isinstance(layer, GRU):
            steps.append(_gru_step(layer))
            watch_layer(layer)
            summary.append("GRU: unrolled recurrence")
            i += 1
            continue

        kernels = _activation_kernels(layer)
        if kernels is not None:
            steps.append(_activation_step(n_slots, kernels[1]))
            n_slots += 1
            summary.append(f"{type(layer).__name__}: activation")
        elif isinstance(layer, L.Flatten):
            steps.append(_flatten_step(layer.start_dim))
            summary.append("Flatten: reshape")
        elif isinstance(layer, L.Standardize):
            steps.append(_standardize_step(layer))
            watch.append((layer, "mean", layer.mean))
            watch.append((layer, "std", layer.std))
            summary.append("Standardize: affine constants")
        elif isinstance(layer, L.Destandardize):
            steps.append(_destandardize_step(layer))
            watch.append((layer, "mean", layer.mean))
            watch.append((layer, "std", layer.std))
            summary.append("Destandardize: affine constants")
        elif isinstance(layer, L.MaxPool2d):
            steps.append(_max_pool2d_step(layer.kernel_size, layer.stride))
            summary.append("MaxPool2d: strided view")
        elif isinstance(layer, L.MaxPool1d):
            steps.append(_max_pool1d_step(layer.kernel_size, layer.stride))
            summary.append("MaxPool1d: strided view")
        elif isinstance(layer, L.AvgPool2d):
            steps.append(_avg_pool2d_step(layer.kernel_size, layer.stride))
            summary.append("AvgPool2d: strided view")
        elif isinstance(layer, L.CropPad2d):
            steps.append(_croppad2d_step(layer.height, layer.width))
            summary.append("CropPad2d: slice/pad")
        elif isinstance(layer, L.BatchNorm1d):
            steps.append(_batchnorm1d_step(layer))
            watch_layer(layer)
            watch.append((layer, "running_mean", layer.running_mean))
            watch.append((layer, "running_var", layer.running_var))
            summary.append("BatchNorm1d: running stats")
        elif isinstance(layer, L.LayerNorm):
            steps.append(_layernorm_step(layer))
            watch_layer(layer)
            summary.append("LayerNorm: fused normalize")
        else:
            raise UnsupportedLayerError(
                f"no compiled lowering for {type(layer).__name__}")
        i += 1

    return CompiledPlan(steps, watch, struct_watch, n_slots, len(layers),
                        n_fused, summary)
