"""Module hierarchy: the layer zoo used by the NAS search spaces.

The HPAC-ML evaluation (Table IV) searches over MLPs (MiniBUDE, Binomial
Options, Bonds) and small CNNs (MiniWeather, ParticleFilter); the layers
here cover exactly that zoo plus the regularizers the hyperparameter
space (Table V) requires (dropout).  The ``Module`` base mirrors Torch's:
named parameters, train/eval modes, and a state-dict for serialization.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from . import functional as F
from . import init as init_mod
from .tensor import Tensor, no_grad

__all__ = [
    "Module", "Parameter", "Linear", "Conv1d", "Conv2d", "MaxPool1d",
    "MaxPool2d", "AvgPool2d", "ReLU", "Tanh", "Sigmoid", "LeakyReLU",
    "Dropout", "Flatten", "Sequential", "Identity", "BatchNorm1d",
    "LayerNorm", "CropPad2d", "Standardize", "Destandardize",
]


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a Module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes;
    those are discovered automatically for ``parameters()`` and
    ``state_dict()``.
    """

    def __init__(self):
        self.training = True

    # -- attribute discovery ------------------------------------------
    def named_parameters(self, prefix: str = ""):
        for name, value in vars(self).items():
            if isinstance(value, Parameter):
                yield prefix + name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix + name + ".")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{prefix}{name}.{i}.")

    def parameters(self):
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count (model-size axis of Figs. 7-8)."""
        return sum(p.size for p in self.parameters())

    def modules(self):
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- modes ---------------------------------------------------------
    def train(self, mode: bool = True):
        for m in self.modules():
            m.training = mode
        return self

    def eval(self):
        return self.train(False)

    def zero_grad(self):
        for p in self.parameters():
            p.zero_grad()

    # -- persistence ----------------------------------------------------
    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict((name, p.data.copy()) for name, p in self.named_parameters())

    def load_state_dict(self, state: dict) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, p in own.items():
            arr = np.asarray(state[name])
            if arr.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{arr.shape} vs {p.data.shape}")
            p.data = arr.astype(p.data.dtype, copy=True)

    # -- call protocol ----------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.forward(x)

    # -- compiled inference fast path -------------------------------------
    def forward_compiled(self, x) -> np.ndarray:
        """Run inference through the compiled NumPy plan (eval semantics).

        Compiles lazily on first use and caches the plan on the module;
        the cache recompiles automatically when a parameter array is
        rebound (e.g. :meth:`load_state_dict`).  Layers without a
        compiled lowering fall back to the graph path under ``no_grad``.
        Returns a plain ndarray which may be plan-owned scratch — copy
        it if it must survive the next call.
        """
        plan = self.__dict__.get("_plan_cache")
        if plan is None or (plan is not _COMPILE_UNSUPPORTED and plan.stale()):
            from .compile import UnsupportedLayerError, compile_inference
            try:
                plan = compile_inference(self)
            except UnsupportedLayerError:
                plan = _COMPILE_UNSUPPORTED
            self._plan_cache = plan
        if plan is _COMPILE_UNSUPPORTED:
            was_training = self.training
            if was_training:
                self.eval()
            try:
                with no_grad():
                    out = self(x).numpy()
            finally:
                if was_training:
                    self.train(True)
            return out
        return plan(x)


#: Sentinel cached on modules whose layer set has no compiled lowering.
_COMPILE_UNSUPPORTED = object()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with weight layout (out, in)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_mod.kaiming_uniform((out_features, in_features), in_features, rng))
        self.bias = Parameter(init_mod.uniform_bias((out_features,), in_features, rng)) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self):
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(init_mod.kaiming_uniform(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in, rng))
        self.bias = Parameter(init_mod.uniform_bias((out_channels,), fan_in, rng)) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def __repr__(self):
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class Conv1d(Module):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        fan_in = in_channels * kernel_size
        self.weight = Parameter(init_mod.kaiming_uniform(
            (out_channels, in_channels, kernel_size), fan_in, rng))
        self.bias = Parameter(init_mod.uniform_bias((out_channels,), fan_in, rng)) \
            if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(x, self.weight, self.bias, self.stride)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self):
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class MaxPool1d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool1d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self):
        return "ReLU()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class LeakyReLU(Module):
    def __init__(self, slope: float = 0.01):
        super().__init__()
        self.slope = slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.slope)


class Dropout(Module):
    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p
        self.rng = rng or np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)

    def __repr__(self):
        return f"Dropout(p={self.p})"


class Flatten(Module):
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_from(self.start_dim)

    def __repr__(self):
        return "Flatten()"


class BatchNorm1d(Module):
    """Batch normalization over the feature axis of (N, F) inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mu = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mu.data.ravel())
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var.data.ravel())
        else:
            mu = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
        norm = (x - mu) / (var + self.eps).sqrt()
        return norm * self.weight + self.bias


class LayerNorm(Module):
    """Layer normalization over the trailing feature axis."""

    def __init__(self, num_features: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        norm = (x - mu) / (var + self.eps).sqrt()
        return norm * self.weight + self.bias


class Standardize(Module):
    """Frozen feature standardization ``(x - mean) / std``.

    Bakes dataset statistics into the model so the deployed surrogate
    consumes raw application memory — the data bridge never needs to
    know about normalization.  ``mean``/``std`` are constants (stored in
    the model spec), not trainable parameters.
    """

    def __init__(self, mean, std):
        super().__init__()
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        if np.any(self.std <= 0):
            raise ValueError("std entries must be positive")

    def forward(self, x: Tensor) -> Tensor:
        return (x - Tensor(self.mean)) * Tensor(1.0 / self.std)

    def __repr__(self):
        return f"Standardize(features={self.mean.size})"


class Destandardize(Module):
    """Frozen inverse standardization ``x * std + mean`` (output heads)."""

    def __init__(self, mean, std):
        super().__init__()
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)

    def forward(self, x: Tensor) -> Tensor:
        return x * Tensor(self.std) + Tensor(self.mean)

    def __repr__(self):
        return f"Destandardize(features={self.mean.size})"


class CropPad2d(Module):
    """Crop or zero-pad the trailing spatial dims to a target (H, W).

    Needed to keep grid-to-grid CNNs shape-preserving when the NAS space
    proposes even kernel sizes (Table IV allows k in [2, 8]), where
    symmetric 'same' padding does not exist.
    """

    def __init__(self, height: int, width: int):
        super().__init__()
        self.height = height
        self.width = width

    def forward(self, x: Tensor) -> Tensor:
        h, w = x.shape[-2], x.shape[-1]
        if h > self.height or w > self.width:
            x = x[..., :min(h, self.height), :min(w, self.width)]
            h, w = x.shape[-2], x.shape[-1]
        if h < self.height or w < self.width:
            pad = [(0, 0)] * (x.ndim - 2)
            pad += [(0, self.height - h), (0, self.width - w)]
            x = x.pad(pad)
        return x

    def __repr__(self):
        return f"CropPad2d({self.height}, {self.width})"


class Sequential(Module):
    """Chain layers; iterable and indexable like ``torch.nn.Sequential``."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        self.__dict__.pop("_plan_cache", None)   # structural change
        return self

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, i):
        return self.layers[i]

    def __len__(self):
        return len(self.layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __repr__(self):
        inner = ", ".join(repr(l) for l in self.layers)
        return f"Sequential({inner})"
