"""Optimizers: SGD (momentum) and Adam/AdamW with decoupled weight decay.

The Table V hyperparameter space tunes learning rate and weight decay;
both optimizers here accept those knobs so the BO inner loop can sweep
them directly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params, lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and L2 decay."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data = p.data - self.lr * g


class Adam(Optimizer):
    """Adam with decoupled weight decay (AdamW semantics).

    Decoupled decay keeps the regularization strength independent of the
    adaptive step size, which matters when BO sweeps ``weight_decay``
    over two orders of magnitude (Table V).
    """

    def __init__(self, params, lr: float = 1e-3, betas: tuple = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data = p.data - self.lr * update
