"""Optimizers: SGD (momentum) and Adam/AdamW with decoupled weight decay.

The Table V hyperparameter space tunes learning rate and weight decay;
both optimizers here accept those knobs so the BO inner loop can sweep
them directly.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "FleetAdam", "FleetSGD"]


class Optimizer:
    """Base optimizer over a parameter list."""

    def __init__(self, params, lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and L2 decay."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data = p.data - self.lr * g


class Adam(Optimizer):
    """Adam with decoupled weight decay (AdamW semantics).

    Decoupled decay keeps the regularization strength independent of the
    adaptive step size, which matters when BO sweeps ``weight_decay``
    over two orders of magnitude (Table V).
    """

    def __init__(self, params, lr: float = 1e-3, betas: tuple = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data = p.data - self.lr * update


def _per_member_column(value, k: int, name: str) -> np.ndarray:
    """Scalar-or-sequence hyperparameter → ``(K, 1)`` float64 column
    (broadcasts against a ``(K, n_flat)`` slab exactly like the
    member's own scalar would)."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        arr = np.full(k, float(arr))
    if arr.shape != (k,):
        raise ValueError(f"{name} must be a scalar or length-{k} "
                         f"sequence, got shape {arr.shape}")
    return arr.reshape(k, 1)


class FleetAdam:
    """Adam/AdamW over a fleet plan's ``(K, n_flat)`` parameter slab.

    One vectorized step advances every active member; per-member
    ``lr`` / ``weight_decay`` ride as ``(K, 1)`` columns so the
    elementwise update of member ``k``'s row is bitwise what its own
    :class:`~repro.nn.compile_train.FusedAdam` would compute.  The
    step count ``t`` is shared — valid because member deactivation is
    monotonic (an early-stopped member never resumes), so an active
    member at step ``t`` has taken exactly ``t`` steps.
    """

    __slots__ = ("plan", "lr", "weight_decay", "beta1", "beta2", "eps",
                 "m", "v", "_u", "_s", "t", "_any_wd")

    def __init__(self, plan, lr=1e-3, weight_decay=0.0,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8):
        k, n = plan.k, plan.n_flat
        self.plan = plan
        self.lr = _per_member_column(lr, k, "lr")
        self.weight_decay = _per_member_column(weight_decay, k,
                                               "weight_decay")
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.m = np.zeros((k, n))
        self.v = np.zeros((k, n))
        self._u = np.empty((k, n))
        self._s = np.empty((k, n))
        self.t = 0
        self._any_wd = bool(np.any(self.weight_decay != 0.0))

    def swap_rows(self, i: int, j: int) -> None:
        for buf in (self.m, self.v, self.lr, self.weight_decay):
            buf[[i, j]] = buf[[j, i]]

    def step(self, n_active: int | None = None) -> None:
        na = self.plan.n_active if n_active is None else n_active
        b1, b2 = self.beta1, self.beta2
        self.t += 1
        bias1 = 1.0 - b1 ** self.t
        bias2 = 1.0 - b2 ** self.t
        G = self.plan.grads[:na]
        M, V, U, S = self.m[:na], self.v[:na], self._u[:na], self._s[:na]
        M *= b1
        np.multiply(G, 1.0 - b1, out=U)
        M += U
        V *= b2
        np.multiply(G, G, out=S)
        S *= 1.0 - b2
        V += S
        np.divide(M, bias1, out=U)
        np.divide(V, bias2, out=S)
        np.sqrt(S, out=S)
        S += self.eps
        U /= S
        P = self.plan.pslab[:na]
        lr = self.lr[:na]
        if self._any_wd:
            # Same op sequence as FusedAdam's decay tail, whole-row:
            # decay term from the parameter, add, scale by lr, subtract.
            np.multiply(P, self.weight_decay[:na], out=S)
            U += S
            np.multiply(U, lr, out=S)
            np.subtract(P, S, out=P)
        else:
            U *= lr
            np.subtract(P, U, out=P)


class FleetSGD:
    """SGD (momentum, L2 decay) over a fleet plan's parameter slab."""

    __slots__ = ("plan", "lr", "momentum", "weight_decay", "vel", "_s",
                 "_any_wd")

    def __init__(self, plan, lr=1e-2, momentum: float = 0.0,
                 weight_decay=0.0):
        k, n = plan.k, plan.n_flat
        self.plan = plan
        self.lr = _per_member_column(lr, k, "lr")
        self.momentum = momentum
        self.weight_decay = _per_member_column(weight_decay, k,
                                               "weight_decay")
        self.vel = np.zeros((k, n)) if momentum else None
        self._s = np.empty((k, n))
        self._any_wd = bool(np.any(self.weight_decay != 0.0))

    def swap_rows(self, i: int, j: int) -> None:
        bufs = [self.lr, self.weight_decay]
        if self.vel is not None:
            bufs.append(self.vel)
        for buf in bufs:
            buf[[i, j]] = buf[[j, i]]

    def step(self, n_active: int | None = None) -> None:
        na = self.plan.n_active if n_active is None else n_active
        G = self.plan.grads[:na]
        S = self._s[:na]
        if self._any_wd:
            np.multiply(self.plan.pslab[:na], self.weight_decay[:na],
                        out=S)
            G += S
        if self.momentum:
            V = self.vel[:na]
            V *= self.momentum
            V += G
            upd = V
        else:
            upd = G
        np.multiply(upd, self.lr[:na], out=S)
        np.subtract(self.plan.pslab[:na], S, out=self.plan.pslab[:na])
