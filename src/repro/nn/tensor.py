"""Reverse-mode autodiff tensor built on NumPy.

This module is the foundation of the ``repro.nn`` substrate, standing in
for the Torch C++ API the paper's runtime links against.  A
:class:`Tensor` wraps a ``numpy.ndarray`` and records the operations that
produced it so that :meth:`Tensor.backward` can propagate gradients with
reverse-mode automatic differentiation.

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` (a plain ndarray), and
  broadcasting performed by forward ops is undone by
  :func:`unbroadcast` during the backward pass.
* The graph is a DAG of :class:`Tensor` nodes; each node stores the
  parent tensors and a closure computing parent gradients from its own.
* Only float arrays participate in differentiation; integer tensors can
  flow through the graph (e.g. index arrays) but never receive grads.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Tensor", "unbroadcast", "no_grad", "is_grad_enabled"]

# Grad mode is thread-local so concurrent training/inference (parallel
# search campaigns on the workflow executor) don't race on it.
_GRAD_STATE = threading.local()


def _grad_enabled() -> bool:
    return getattr(_GRAD_STATE, "enabled", True)


class no_grad:
    """Context manager disabling graph construction (like ``torch.no_grad``)."""

    def __enter__(self):
        self._prev = _grad_enabled()
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc):
        _GRAD_STATE.enabled = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether new operations are recorded onto the autograd graph."""
    return _grad_enabled()


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape``.

    NumPy broadcasting can expand operand shapes during the forward pass;
    the corresponding backward pass must sum gradients over broadcast
    axes so each parameter receives a gradient of its own shape.
    """
    if grad.shape == tuple(shape):
        return grad
    # Sum over leading axes added by broadcasting.
    ndiff = grad.ndim - len(shape)
    if ndiff > 0:
        grad = grad.sum(axis=tuple(range(ndiff)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(data) -> np.ndarray:
    if isinstance(data, np.ndarray):
        return data
    arr = np.asarray(data)
    if arr.dtype == np.float64 or arr.dtype == np.float16:
        arr = arr.astype(np.float64)
    return arr


class Tensor:
    """A NumPy-backed tensor participating in reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Stored as ``numpy.ndarray`` without copy
        when possible.
    requires_grad:
        Whether gradients should be accumulated for this leaf.
    parents:
        Graph predecessors (internal).
    backward_fn:
        Closure mapping ``self.grad`` to a tuple of parent gradients
        (internal).
    name:
        Optional debugging label.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(self, data, requires_grad: bool = False, parents=(), backward_fn=None,
                 name: str | None = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self.grad: np.ndarray | None = None
        self._parents = tuple(parents) if self.requires_grad or parents else ()
        self._backward_fn = backward_fn
        self.name = name
        if not _grad_enabled():
            self._parents = ()
            self._backward_fn = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}, dtype={self.data.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data, parents, backward_fn) -> "Tensor":
        requires = _grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (so scalars need no argument, matching
        Torch semantics for loss tensors).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node._backward_fn is None:
                # Leaf: accumulate.
                node.grad = g if node.grad is None else node.grad + g
                continue
            parent_grads = node._backward_fn(g)
            for p, pg in zip(node._parents, parent_grads):
                if pg is None or not p.requires_grad:
                    continue
                pg = unbroadcast(np.asarray(pg), p.data.shape)
                key = id(p)
                if key in grads:
                    grads[key] = grads[key] + pg
                else:
                    grads[key] = pg

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data
        return Tensor._make(out_data, (self, other), lambda g: (g, g))

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data
        return Tensor._make(out_data, (self, other), lambda g: (g, -g))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data
        a, b = self, other
        return Tensor._make(out_data, (a, b), lambda g: (g * b.data, g * a.data))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data
        a, b = self, other
        return Tensor._make(
            out_data, (a, b),
            lambda g: (g / b.data, -g * a.data / (b.data * b.data)))

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data ** exponent
        a = self
        return Tensor._make(
            out_data, (a,),
            lambda g: (g * exponent * a.data ** (exponent - 1),))

    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data
        a, b = self, other

        def backward(g):
            if a.data.ndim == 1 and b.data.ndim == 1:
                return g * b.data, g * a.data
            if a.data.ndim == 1:
                ga = g @ np.swapaxes(b.data, -1, -2)
                gb = np.outer(a.data, g)
                return ga, gb
            if b.data.ndim == 1:
                ga = np.expand_dims(g, -1) * b.data
                gb = np.swapaxes(a.data, -1, -2) @ g
                return ga, gb
            ga = g @ np.swapaxes(b.data, -1, -2)
            gb = np.swapaxes(a.data, -1, -2) @ g
            return unbroadcast(ga, a.data.shape), unbroadcast(gb, b.data.shape)

        return Tensor._make(out_data, (a, b), backward)

    # ------------------------------------------------------------------
    # Comparisons (no grad; return plain Tensors of bools/floats)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data > other)

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data < other)

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data >= other)

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data <= other)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.data.shape
        out_data = self.data.reshape(shape)
        return Tensor._make(out_data, (self,), lambda g: (g.reshape(old_shape),))

    def flatten_from(self, start_dim: int = 1) -> "Tensor":
        """Flatten trailing dims beginning at ``start_dim`` (Torch ``flatten``)."""
        lead = self.data.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def transpose(self, *axes) -> "Tensor":
        axes = axes or None
        if axes and len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = np.transpose(self.data, axes)
        if axes is None:
            inv = None
        else:
            inv = tuple(np.argsort(axes))
        return Tensor._make(out_data, (self,),
                            lambda g: (np.transpose(g, inv),))

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out_data = np.swapaxes(self.data, a, b)
        return Tensor._make(out_data, (self,), lambda g: (np.swapaxes(g, a, b),))

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]
        src = self

        def backward(g):
            full = np.zeros_like(src.data, dtype=np.float64)
            np.add.at(full, idx, g)
            return (full,)

        return Tensor._make(out_data, (src,), backward)

    @staticmethod
    def concatenate(tensors: list, axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        splits = np.cumsum(sizes)[:-1]

        def backward(g):
            return tuple(np.split(g, splits, axis=axis))

        return Tensor._make(out_data, tuple(tensors), backward)

    @staticmethod
    def stack(tensors: list, axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(g):
            return tuple(np.moveaxis(g, axis, 0))

        return Tensor._make(out_data, tuple(tensors), backward)

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` follows ``numpy.pad`` convention."""
        out_data = np.pad(self.data, pad_width)
        slices = tuple(slice(lo, lo + s) for (lo, _hi), s in zip(pad_width, self.data.shape))
        return Tensor._make(out_data, (self,), lambda g: (g[slices],))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        src_shape = self.data.shape

        def backward(g):
            if axis is None:
                return (np.broadcast_to(g, src_shape).copy(),)
            g2 = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % len(src_shape) for a in axes):
                    g2 = np.expand_dims(g2, ax)
            return (np.broadcast_to(g2, src_shape).copy(),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            n = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            n = 1
            for ax in axes:
                n *= self.data.shape[ax]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / n)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        src = self

        def backward(g):
            if axis is None:
                mask = (src.data == src.data.max())
                return (mask * g / mask.sum(),)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (src.data == expanded)
            counts = mask.sum(axis=axis, keepdims=True)
            g2 = g if keepdims else np.expand_dims(g, axis)
            return (mask * g2 / counts,)

        return Tensor._make(out_data, (src,), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return Tensor._make(out_data, (self,), lambda g: (g * out_data,))

    def log(self) -> "Tensor":
        a = self
        return Tensor._make(np.log(self.data), (a,), lambda g: (g / a.data,))

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        return Tensor._make(out_data, (self,), lambda g: (g * 0.5 / out_data,))

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return Tensor._make(out_data, (self,), lambda g: (g * (1.0 - out_data * out_data),))

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor._make(out_data, (self,),
                            lambda g: (g * out_data * (1.0 - out_data),))

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._make(self.data * mask, (self,), lambda g: (g * mask,))

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        factor = np.where(mask, 1.0, slope)
        return Tensor._make(self.data * factor, (self,), lambda g: (g * factor,))

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._make(np.abs(self.data), (self,), lambda g: (g * sign,))

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)
        return Tensor._make(np.clip(self.data, lo, hi), (self,), lambda g: (g * mask,))
