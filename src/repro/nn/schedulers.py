"""Learning-rate schedulers for the training stack.

The BO inner loop trains each candidate briefly; schedulers let longer
offline training runs (the ML engineer's side of the §III workflow)
anneal properly.  API mirrors Torch: construct over an optimizer, call
``step()`` once per epoch.
"""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["StepLR", "CosineAnnealingLR", "ReduceLROnPlateau"]


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError(f"step_size must be positive: {step_size}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * \
            self.gamma ** (self.epoch // self.step_size)
        return self.optimizer.lr


class CosineAnnealingLR:
    """Cosine decay from the base rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int,
                 eta_min: float = 0.0):
        if t_max <= 0:
            raise ValueError(f"t_max must be positive: {t_max}")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> float:
        self.epoch = min(self.epoch + 1, self.t_max)
        cos = (1 + math.cos(math.pi * self.epoch / self.t_max)) / 2
        self.optimizer.lr = self.eta_min + (self.base_lr - self.eta_min) * cos
        return self.optimizer.lr


class ReduceLROnPlateau:
    """Halve (by ``factor``) when the monitored loss stops improving."""

    def __init__(self, optimizer: Optimizer, factor: float = 0.5,
                 patience: int = 5, min_lr: float = 1e-6):
        if not 0 < factor < 1:
            raise ValueError(f"factor must be in (0, 1): {factor}")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.best = float("inf")
        self.stale = 0

    def step(self, loss: float) -> float:
        if loss < self.best - 1e-12:
            self.best = loss
            self.stale = 0
        else:
            self.stale += 1
            if self.stale > self.patience:
                self.optimizer.lr = max(self.min_lr,
                                        self.optimizer.lr * self.factor)
                self.stale = 0
        return self.optimizer.lr
