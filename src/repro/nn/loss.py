"""Loss functions and evaluation metrics.

RMSE and MAPE are the two QoI metrics of Table I; the differentiable
losses (MSE, Huber, L1) are what the BO inner loop trains against.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["mse_loss", "l1_loss", "huber_loss", "mape_loss", "rmse", "mape"]


def _pair(pred, target) -> tuple[Tensor, Tensor]:
    if not isinstance(pred, Tensor):
        pred = Tensor(pred)
    if not isinstance(target, Tensor):
        target = Tensor(target)
    if pred.shape != target.shape:
        raise ValueError(f"loss shape mismatch: {pred.shape} vs {target.shape}")
    return pred, target


def mse_loss(pred, target) -> Tensor:
    """Mean squared error."""
    pred, target = _pair(pred, target)
    diff = pred - target
    return (diff * diff).mean()


def l1_loss(pred, target) -> Tensor:
    """Mean absolute error."""
    pred, target = _pair(pred, target)
    return (pred - target).abs().mean()


def huber_loss(pred, target, delta: float = 1.0) -> Tensor:
    """Huber loss: quadratic near zero, linear in the tails."""
    pred, target = _pair(pred, target)
    diff = (pred - target).abs()
    quad = diff.clip(0.0, delta)
    lin = diff - quad
    return (quad * quad * 0.5 + lin * delta).mean()


def mape_loss(pred, target, eps: float = 1e-8) -> Tensor:
    """Differentiable mean absolute percentage error (fraction, not %)."""
    pred, target = _pair(pred, target)
    denom = Tensor(np.maximum(np.abs(target.data), eps))
    return ((pred - target).abs() / denom).mean()


# ----------------------------------------------------------------------
# Non-differentiable evaluation metrics on ndarrays
# ----------------------------------------------------------------------

def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    """Root mean squared error — Table I metric for 4 of 5 benchmarks."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"rmse shape mismatch: {pred.shape} vs {target.shape}")
    return float(np.sqrt(np.mean((pred - target) ** 2)))


def mape(pred: np.ndarray, target: np.ndarray, eps: float = 1e-12) -> float:
    """Mean absolute percentage error in percent — MiniBUDE's metric."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"mape shape mismatch: {pred.shape} vs {target.shape}")
    denom = np.maximum(np.abs(target), eps)
    return float(np.mean(np.abs(pred - target) / denom) * 100.0)
