"""Recurrent layers (GRU) — the RNN branch of the paper's design space.

§I motivates NN surrogates with the "rich space of architectures such
as MLPs, CNNs, and RNNs"; the Table IV spaces only exercise the first
two, so recurrent support is the natural extension for sequence-shaped
regions (e.g. time-windowed auto-regressive surrogates).  The GRU here
unrolls over the autograd graph for the reference path, and registers
its own :mod:`repro.nn.plan` lowering (bottom of this module) so both
compiled pipelines — inference *and* training (truncated-free BPTT
over the full window) — cover sequence surrogates.
"""

from __future__ import annotations

import numpy as np

from . import init as init_mod
from .layers import Module, Parameter
from .plan import PlanStep, register_lowering
from .tensor import Tensor

__all__ = ["GRUCell", "GRU", "GRUStep"]


class GRUCell(Module):
    """Single gated-recurrent-unit step.

    Weight layout matches Torch: ``weight_ih`` is (3H, F) stacked as
    [reset; update; new], ``weight_hh`` is (3H, H).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        h3 = 3 * hidden_size
        self.weight_ih = Parameter(
            init_mod.kaiming_uniform((h3, input_size), input_size, rng))
        self.weight_hh = Parameter(
            init_mod.kaiming_uniform((h3, hidden_size), hidden_size, rng))
        self.bias_ih = Parameter(init_mod.uniform_bias((h3,), input_size, rng))
        self.bias_hh = Parameter(init_mod.uniform_bias((h3,), hidden_size,
                                                       rng))

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        if h is None:
            h = Tensor(np.zeros((x.shape[0], self.hidden_size)))
        gi = x @ self.weight_ih.transpose() + self.bias_ih
        gh = h @ self.weight_hh.transpose() + self.bias_hh
        hs = self.hidden_size
        i_r, i_z, i_n = (gi[:, :hs], gi[:, hs:2 * hs], gi[:, 2 * hs:])
        h_r, h_z, h_n = (gh[:, :hs], gh[:, hs:2 * hs], gh[:, 2 * hs:])
        r = (i_r + h_r).sigmoid()
        z = (i_z + h_z).sigmoid()
        n = (i_n + r * h_n).tanh()
        return n + z * (h - n)

    def __call__(self, x, h=None) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.forward(x, h)

    def __repr__(self):
        return f"GRUCell({self.input_size}, {self.hidden_size})"


class GRU(Module):
    """Unrolled GRU over (batch, seq, features) inputs.

    ``return_sequence`` selects the full hidden sequence
    (batch, seq, H) or the final hidden state (batch, H) — the latter is
    the usual regression-head input.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 return_sequence: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.return_sequence = return_sequence
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"GRU expects (batch, seq, features), got "
                             f"{x.shape}")
        seq_len = x.shape[1]
        h = None
        outputs = []
        for t in range(seq_len):
            h = self.cell(x[:, t, :], h)
            if self.return_sequence:
                outputs.append(h)
        if self.return_sequence:
            return Tensor.stack(outputs, axis=1)
        return h

    def __repr__(self):
        return (f"GRU({self.input_size}, {self.hidden_size}, "
                f"return_sequence={self.return_sequence})")


# ----------------------------------------------------------------------
# Compiled lowering (inference recurrence + hand-derived BPTT)
# ----------------------------------------------------------------------

class GRUStep(PlanStep):
    """Unrolled GRU over raw ndarrays, shared by both compiled modes.

    The forward replays the graph path's exact operation sequence (per
    timestep ``x_t @ W_ih^T + b_ih`` / ``h @ W_hh^T + b_hh``, the
    1/(1+exp(-x)) sigmoid, ``h = n + z*(h - n)``).  In training mode it
    stashes the per-timestep gate activations and the backward pass
    runs backpropagation-through-time over the full window: the gate
    adjoints mirror the autodiff formulas term for term (sigmoid as
    ``(g*s)*(1-s)``, tanh as ``g*(1-n*n)``, the update-gate split as
    ``dh*z`` / ``dh - dh*z``), and the four parameter gradients
    accumulate across timesteps in the same reverse order the graph's
    leaf accumulation runs, straight into views of the plan's flat
    gradient buffer.  Weight transposes are views over the parameter
    arrays: in-place optimizer updates flow through without recompiling.
    """

    __slots__ = ("cell", "w_ih_t", "w_hh_t", "return_sequence",
                 "gw_ih", "gw_hh", "gb_ih", "gb_hh", "grad_params")

    def __init__(self, layer, training):
        super().__init__(training)
        cell = layer.cell
        self.cell = cell
        self.w_ih_t = cell.weight_ih.data.T   # views: live updates flow
        self.w_hh_t = cell.weight_hh.data.T
        self.return_sequence = layer.return_sequence
        self.gw_ih = self.gw_hh = self.gb_ih = self.gb_hh = None
        self.grad_params = (cell.weight_ih, cell.weight_hh,
                            cell.bias_ih, cell.bias_hh)

    def bind_grads(self, views):
        self.gw_ih, self.gw_hh, self.gb_ih, self.gb_hh = views

    def forward(self, x, n):
        if x.ndim != 3:
            raise ValueError(f"GRU expects (batch, seq, features), got "
                             f"{x.shape}")
        cell = self.cell
        hs = cell.hidden_size
        b_ih, b_hh = cell.bias_ih.data, cell.bias_hh.data
        batch, seq_len = x.shape[0], x.shape[1]
        h = np.zeros((batch, hs))
        outputs = [] if self.return_sequence else None
        stash = [] if self.training else None
        for t in range(seq_len):
            x_t = x[:, t, :]
            gi = x_t @ self.w_ih_t + b_ih
            gh = h @ self.w_hh_t + b_hh
            r = 1.0 / (1.0 + np.exp(-(gi[:, :hs] + gh[:, :hs])))
            z = 1.0 / (1.0 + np.exp(-(gi[:, hs:2 * hs] + gh[:, hs:2 * hs])))
            gh_n = gh[:, 2 * hs:]
            n_gate = np.tanh(gi[:, 2 * hs:] + r * gh_n)
            if stash is not None:
                stash.append((x_t, h, r, z, n_gate, gh_n))
            h = n_gate + z * (h - n_gate)
            if outputs is not None:
                outputs.append(h)
        if stash is not None:
            self.scratch(n)["stash"] = stash
        if outputs is not None:
            return np.stack(outputs, axis=1)
        return h

    def backward(self, g, n, need_gx):
        stash = self._bufs[n]["stash"]
        seq_len = len(stash)
        gw_ih, gw_hh = self.gw_ih, self.gw_hh
        gb_ih, gb_hh = self.gb_ih, self.gb_hh
        gw_ih.fill(0.0)
        gw_hh.fill(0.0)
        gb_ih.fill(0.0)
        gb_hh.fill(0.0)
        w_ih = self.w_ih_t.T                   # (3H, F) original layout
        w_hh = self.w_hh_t.T
        gx = np.zeros((g.shape[0],) + (seq_len, w_ih.shape[1])) \
            if need_gx else None
        if self.return_sequence:
            dh = np.zeros_like(g[:, 0, :])
        else:
            dh = g
        for t in range(seq_len - 1, -1, -1):
            x_t, h_prev, r, z, n_gate, gh_n = stash[t]
            if self.return_sequence:
                dh = dh + g[:, t, :]
            # h = n + z*(h_prev - n): graph splits the incoming gradient
            # as dn = dh - dh*z, dz = dh*(h_prev - n), dh_prev = dh*z.
            dhz = dh * z
            dn = dh - dhz
            dz = dh * (h_prev - n_gate)
            # tanh / sigmoid adjoints, associated exactly as the graph.
            dn_pre = dn * (1.0 - n_gate * n_gate)
            dr = dn_pre * gh_n
            dghn = dn_pre * r
            dz_pre = (dz * z) * (1.0 - z)
            dr_pre = (dr * r) * (1.0 - r)
            dgi = np.concatenate((dr_pre, dz_pre, dn_pre), axis=1)
            dgh = np.concatenate((dr_pre, dz_pre, dghn), axis=1)
            gw_ih += dgi.T @ x_t
            gb_ih += dgi.sum(axis=0)
            gw_hh += dgh.T @ h_prev
            gb_hh += dgh.sum(axis=0)
            if gx is not None:
                gx[:, t, :] = dgi @ w_ih
            dh = dhz + dgh @ w_hh
        return gx


@register_lowering(GRU)
def _lower_gru(layer, ctx):
    if ctx.training:
        cell = layer.cell
        for p in (cell.weight_ih, cell.weight_hh, cell.bias_ih,
                  cell.bias_hh):
            ctx.add_param(p)
        ctx.emit(GRUStep(layer, True), "GRU: unrolled BPTT")
    else:
        ctx.watch_params(layer)
        ctx.emit(GRUStep(layer, False), "GRU: unrolled recurrence")
