"""Recurrent layers (GRU) — the RNN branch of the paper's design space.

§I motivates NN surrogates with the "rich space of architectures such
as MLPs, CNNs, and RNNs"; the Table IV spaces only exercise the first
two, so recurrent support is the natural extension for sequence-shaped
regions (e.g. time-windowed auto-regressive surrogates).  The GRU here
unrolls over the autograd graph, so it trains with the ordinary
:class:`repro.nn.Trainer`.
"""

from __future__ import annotations

import numpy as np

from . import init as init_mod
from .layers import Module, Parameter
from .tensor import Tensor

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """Single gated-recurrent-unit step.

    Weight layout matches Torch: ``weight_ih`` is (3H, F) stacked as
    [reset; update; new], ``weight_hh`` is (3H, H).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        h3 = 3 * hidden_size
        self.weight_ih = Parameter(
            init_mod.kaiming_uniform((h3, input_size), input_size, rng))
        self.weight_hh = Parameter(
            init_mod.kaiming_uniform((h3, hidden_size), hidden_size, rng))
        self.bias_ih = Parameter(init_mod.uniform_bias((h3,), input_size, rng))
        self.bias_hh = Parameter(init_mod.uniform_bias((h3,), hidden_size,
                                                       rng))

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        if h is None:
            h = Tensor(np.zeros((x.shape[0], self.hidden_size)))
        gi = x @ self.weight_ih.transpose() + self.bias_ih
        gh = h @ self.weight_hh.transpose() + self.bias_hh
        hs = self.hidden_size
        i_r, i_z, i_n = (gi[:, :hs], gi[:, hs:2 * hs], gi[:, 2 * hs:])
        h_r, h_z, h_n = (gh[:, :hs], gh[:, hs:2 * hs], gh[:, 2 * hs:])
        r = (i_r + h_r).sigmoid()
        z = (i_z + h_z).sigmoid()
        n = (i_n + r * h_n).tanh()
        return n + z * (h - n)

    def __call__(self, x, h=None) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self.forward(x, h)

    def __repr__(self):
        return f"GRUCell({self.input_size}, {self.hidden_size})"


class GRU(Module):
    """Unrolled GRU over (batch, seq, features) inputs.

    ``return_sequence`` selects the full hidden sequence
    (batch, seq, H) or the final hidden state (batch, H) — the latter is
    the usual regression-head input.
    """

    def __init__(self, input_size: int, hidden_size: int,
                 return_sequence: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.return_sequence = return_sequence
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"GRU expects (batch, seq, features), got "
                             f"{x.shape}")
        seq_len = x.shape[1]
        h = None
        outputs = []
        for t in range(seq_len):
            h = self.cell(x[:, t, :], h)
            if self.return_sequence:
                outputs.append(h)
        if self.return_sequence:
            return Tensor.stack(outputs, axis=1)
        return h

    def __repr__(self):
        return (f"GRU({self.input_size}, {self.hidden_size}, "
                f"return_sequence={self.return_sequence})")
