"""``repro.nn`` — NumPy tensor/autograd framework (the "Torch" substrate).

Provides the inference engine and training stack the HPAC-ML runtime
delegates to.  See DESIGN.md §2 for the Torch → repro.nn substitution.
"""

from .tensor import Tensor, no_grad, is_grad_enabled, unbroadcast
from . import functional
from .layers import (
    Module, Parameter, Linear, Conv1d, Conv2d, MaxPool1d, MaxPool2d,
    AvgPool2d, ReLU, Tanh, Sigmoid, LeakyReLU, Dropout, Flatten,
    Sequential, Identity, BatchNorm1d, LayerNorm, CropPad2d,
    Standardize, Destandardize,
)
from .plan import (FleetPlan, PlanStep, fleet_fingerprint,
                   register_fleet_lowering, register_lowering,
                   structural_fingerprint, UnsupportedLayerError)
from .compile import compile_fleet_inference, compile_inference, CompiledPlan
from .compile_train import (compile_fleet_training, compile_training,
                            CompiledTrainingPlan, FleetTrainingPlan,
                            FusedAdam, FusedSGD,
                            fleet_training_fingerprint,
                            training_fingerprint)
from .optim import Optimizer, SGD, Adam, FleetAdam, FleetSGD
from .loss import mse_loss, l1_loss, huber_loss, mape_loss, rmse, mape
from .serialize import (save_model, load_model, load_meta, spec_from_model,
                        model_from_spec, ModelFormatError)
from .training import (FleetTrainer, Trainer, TrainResult,
                       train_val_split, iterate_minibatches,
                       normalize_stats, Normalizer)
from .schedulers import StepLR, CosineAnnealingLR, ReduceLROnPlateau
from .recurrent import GRUCell, GRU
from .data import ArrayDataset, H5Dataset, DataLoader

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled", "unbroadcast", "functional",
    "Module", "Parameter", "Linear", "Conv1d", "Conv2d", "MaxPool1d",
    "MaxPool2d", "AvgPool2d", "ReLU", "Tanh", "Sigmoid", "LeakyReLU",
    "Dropout", "Flatten", "Sequential", "Identity", "BatchNorm1d",
    "LayerNorm", "CropPad2d", "Standardize", "Destandardize", "Optimizer", "SGD", "Adam", "mse_loss", "l1_loss",
    "huber_loss", "mape_loss", "rmse", "mape", "save_model", "load_model",
    "load_meta", "spec_from_model", "model_from_spec", "ModelFormatError",
    "Trainer", "TrainResult", "train_val_split", "iterate_minibatches",
    "normalize_stats", "Normalizer", "StepLR", "CosineAnnealingLR",
    "ReduceLROnPlateau", "GRUCell", "GRU", "ArrayDataset",
    "H5Dataset", "DataLoader", "compile_inference", "CompiledPlan",
    "UnsupportedLayerError", "compile_training", "CompiledTrainingPlan",
    "FusedAdam", "FusedSGD", "PlanStep", "register_lowering",
    "structural_fingerprint", "training_fingerprint",
    "FleetPlan", "FleetTrainingPlan", "FleetTrainer", "FleetAdam",
    "FleetSGD", "compile_fleet_inference", "compile_fleet_training",
    "fleet_fingerprint", "fleet_training_fingerprint",
    "register_fleet_lowering",
]
