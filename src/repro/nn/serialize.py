"""Self-contained serialized model format (``.rnm``).

Stands in for TorchScript: the paper's runtime loads an opaque model
file given by the ``model("/path/model.pt")`` clause with no knowledge
of how the model was built.  An ``.rnm`` file therefore encodes *both*
the architecture (a JSON layer spec) and the trained weights (raw
little-endian arrays), so :func:`load_model` can reconstruct and run a
model from the path alone.

Layout::

    magic  b"RNM1"
    u64    header length
    bytes  JSON header: {"arch": [...layer specs...],
                         "arrays": [{"name", "dtype", "shape", "offset", "nbytes"}],
                         "meta": {...}}
    bytes  concatenated raw array payloads
    bytes  checksum footer: b"RNMF" + blake2b-128 of all preceding bytes

Writes are crash-safe: :func:`save_model` serializes to a sibling temp
file, fsyncs, and moves it into place with ``os.replace`` — readers
only ever see the previous complete file or the new complete file,
never a torn write.  :func:`load_model` verifies the checksum footer
(and still accepts footerless files written by earlier versions).
"""

from __future__ import annotations

import hashlib
import json
import struct
from pathlib import Path

import numpy as np

from . import layers as L

__all__ = ["save_model", "load_model", "spec_from_model", "model_from_spec",
           "ModelFormatError", "MAGIC", "FOOTER_MAGIC"]

MAGIC = b"RNM1"
FOOTER_MAGIC = b"RNMF"

#: blake2b digest size of the checksum footer (bytes).
_DIGEST_SIZE = 16


def _checksum(blob: bytes) -> bytes:
    return hashlib.blake2b(blob, digest_size=_DIGEST_SIZE).digest()


class ModelFormatError(RuntimeError):
    """Raised when a model file is malformed or unsupported."""


# ----------------------------------------------------------------------
# Architecture spec <-> Module
# ----------------------------------------------------------------------

def spec_from_model(model: L.Module) -> list[dict]:
    """Describe a model as a JSON-serializable layer-spec list.

    Only :class:`Sequential` compositions of the layer zoo are
    serializable — the same restriction TorchScript tracing effectively
    imposes on the paper's MLP/CNN surrogates.
    """
    if not isinstance(model, L.Sequential):
        raise ModelFormatError(
            f"only Sequential models are serializable, got {type(model).__name__}")
    spec = []
    for layer in model:
        if isinstance(layer, L.Linear):
            spec.append({"type": "Linear", "in": layer.in_features,
                         "out": layer.out_features,
                         "bias": layer.bias is not None})
        elif isinstance(layer, L.Conv2d):
            spec.append({"type": "Conv2d", "in": layer.in_channels,
                         "out": layer.out_channels, "k": layer.kernel_size,
                         "s": layer.stride, "p": layer.padding,
                         "bias": layer.bias is not None})
        elif isinstance(layer, L.Conv1d):
            spec.append({"type": "Conv1d", "in": layer.in_channels,
                         "out": layer.out_channels, "k": layer.kernel_size,
                         "s": layer.stride, "bias": layer.bias is not None})
        elif isinstance(layer, L.MaxPool2d):
            spec.append({"type": "MaxPool2d", "k": layer.kernel_size,
                         "s": layer.stride})
        elif isinstance(layer, L.MaxPool1d):
            spec.append({"type": "MaxPool1d", "k": layer.kernel_size,
                         "s": layer.stride})
        elif isinstance(layer, L.AvgPool2d):
            spec.append({"type": "AvgPool2d", "k": layer.kernel_size,
                         "s": layer.stride})
        elif isinstance(layer, L.ReLU):
            spec.append({"type": "ReLU"})
        elif isinstance(layer, L.Tanh):
            spec.append({"type": "Tanh"})
        elif isinstance(layer, L.Sigmoid):
            spec.append({"type": "Sigmoid"})
        elif isinstance(layer, L.LeakyReLU):
            spec.append({"type": "LeakyReLU", "slope": layer.slope})
        elif isinstance(layer, L.Dropout):
            spec.append({"type": "Dropout", "p": layer.p})
        elif isinstance(layer, L.Flatten):
            spec.append({"type": "Flatten", "start_dim": layer.start_dim})
        elif isinstance(layer, L.Identity):
            spec.append({"type": "Identity"})
        elif isinstance(layer, L.CropPad2d):
            spec.append({"type": "CropPad2d", "h": layer.height,
                         "w": layer.width})
        elif isinstance(layer, L.Standardize):
            spec.append({"type": "Standardize",
                         "mean": layer.mean.ravel().tolist(),
                         "std": layer.std.ravel().tolist(),
                         "shape": list(layer.mean.shape)})
        elif isinstance(layer, L.Destandardize):
            spec.append({"type": "Destandardize",
                         "mean": layer.mean.ravel().tolist(),
                         "std": layer.std.ravel().tolist(),
                         "shape": list(layer.mean.shape)})
        elif isinstance(layer, L.BatchNorm1d):
            spec.append({"type": "BatchNorm1d", "features": layer.num_features,
                         "eps": layer.eps, "momentum": layer.momentum})
        elif isinstance(layer, L.LayerNorm):
            spec.append({"type": "LayerNorm",
                         "features": int(layer.weight.size), "eps": layer.eps})
        else:
            from .recurrent import GRU
            if isinstance(layer, GRU):
                spec.append({"type": "GRU", "in": layer.input_size,
                             "hidden": layer.hidden_size,
                             "seq": layer.return_sequence})
            else:
                raise ModelFormatError(
                    f"unsupported layer {type(layer).__name__}")
    return spec


def model_from_spec(spec: list[dict]) -> L.Sequential:
    """Reconstruct a :class:`Sequential` model from a layer-spec list."""
    rng = np.random.default_rng(0)
    layers: list[L.Module] = []
    for entry in spec:
        kind = entry["type"]
        if kind == "Linear":
            layers.append(L.Linear(entry["in"], entry["out"],
                                   bias=entry.get("bias", True), rng=rng))
        elif kind == "Conv2d":
            layers.append(L.Conv2d(entry["in"], entry["out"], entry["k"],
                                   stride=entry.get("s", 1),
                                   padding=entry.get("p", 0),
                                   bias=entry.get("bias", True), rng=rng))
        elif kind == "Conv1d":
            layers.append(L.Conv1d(entry["in"], entry["out"], entry["k"],
                                   stride=entry.get("s", 1),
                                   bias=entry.get("bias", True), rng=rng))
        elif kind == "MaxPool2d":
            layers.append(L.MaxPool2d(entry["k"], entry.get("s")))
        elif kind == "MaxPool1d":
            layers.append(L.MaxPool1d(entry["k"], entry.get("s")))
        elif kind == "AvgPool2d":
            layers.append(L.AvgPool2d(entry["k"], entry.get("s")))
        elif kind == "ReLU":
            layers.append(L.ReLU())
        elif kind == "Tanh":
            layers.append(L.Tanh())
        elif kind == "Sigmoid":
            layers.append(L.Sigmoid())
        elif kind == "LeakyReLU":
            layers.append(L.LeakyReLU(entry.get("slope", 0.01)))
        elif kind == "Dropout":
            layers.append(L.Dropout(entry.get("p", 0.5)))
        elif kind == "Flatten":
            layers.append(L.Flatten(entry.get("start_dim", 1)))
        elif kind == "Identity":
            layers.append(L.Identity())
        elif kind == "CropPad2d":
            layers.append(L.CropPad2d(entry["h"], entry["w"]))
        elif kind == "GRU":
            from .recurrent import GRU
            layers.append(GRU(entry["in"], entry["hidden"],
                              return_sequence=entry.get("seq", False),
                              rng=rng))
        elif kind in ("Standardize", "Destandardize"):
            shape = tuple(entry.get("shape") or [len(entry["mean"])])
            mean = np.asarray(entry["mean"]).reshape(shape)
            std = np.asarray(entry["std"]).reshape(shape)
            cls_ = L.Standardize if kind == "Standardize" else L.Destandardize
            layers.append(cls_(mean, std))
        elif kind == "BatchNorm1d":
            layers.append(L.BatchNorm1d(entry["features"], entry.get("eps", 1e-5),
                                        entry.get("momentum", 0.1)))
        elif kind == "LayerNorm":
            layers.append(L.LayerNorm(entry["features"], entry.get("eps", 1e-5)))
        else:
            raise ModelFormatError(f"unknown layer type in spec: {kind!r}")
    return L.Sequential(*layers)


# ----------------------------------------------------------------------
# File I/O
# ----------------------------------------------------------------------

def save_model(model: L.Module, path, meta: dict | None = None) -> None:
    """Serialize ``model`` (architecture + weights) to ``path``.

    Crash-safe: the checksummed blob lands in a sibling temp file,
    fsyncs, and is moved over ``path`` with ``os.replace`` — a crash at
    any point leaves either the old file or the new one, never a torn
    mix.
    """
    path = Path(path)
    spec = spec_from_model(model)
    state = model.state_dict()

    arrays = []
    payload = bytearray()
    for name, arr in state.items():
        arr = np.ascontiguousarray(arr)
        arrays.append({"name": name, "dtype": str(arr.dtype),
                       "shape": list(arr.shape), "offset": len(payload),
                       "nbytes": arr.nbytes})
        payload.extend(arr.tobytes())

    header = json.dumps({"arch": spec, "arrays": arrays,
                         "meta": meta or {}}).encode("utf-8")
    blob = MAGIC + struct.pack("<Q", len(header)) + header + bytes(payload)
    blob += FOOTER_MAGIC + _checksum(blob)
    from ..ioutil import atomic_write_bytes
    atomic_write_bytes(path, blob)


def load_model(path) -> L.Sequential:
    """Load a model saved by :func:`save_model`; returns it in eval mode.

    The checksum footer is verified before any array is trusted;
    footerless files from earlier format versions still load (their
    arrays remain length-checked individually).
    """
    path = Path(path)
    blob = path.read_bytes()
    if blob[:4] != MAGIC:
        raise ModelFormatError(f"{path}: bad magic {blob[:4]!r}")
    try:
        (hlen,) = struct.unpack("<Q", blob[4:12])
        header = json.loads(blob[12:12 + hlen].decode("utf-8"))
    except (struct.error, UnicodeDecodeError,
            json.JSONDecodeError) as exc:
        raise ModelFormatError(f"{path}: corrupt header: {exc}") from exc
    payload_start = 12 + hlen
    payload = blob[payload_start:]
    # The payload's true extent is known from the header, so the footer
    # is unambiguous: any bytes past the last array must be it.
    payload_end = max((e["offset"] + e["nbytes"]
                       for e in header["arrays"]), default=0)
    trailer = payload[payload_end:]
    if trailer:
        if len(trailer) != len(FOOTER_MAGIC) + _DIGEST_SIZE or \
                not trailer.startswith(FOOTER_MAGIC):
            raise ModelFormatError(f"{path}: invalid checksum footer")
        if _checksum(blob[:payload_start + payload_end]) != \
                trailer[len(FOOTER_MAGIC):]:
            raise ModelFormatError(
                f"{path}: checksum mismatch (torn or corrupted write)")

    model = model_from_spec(header["arch"])
    state = {}
    for entry in header["arrays"]:
        start = entry["offset"]
        raw = payload[start:start + entry["nbytes"]]
        if len(raw) != entry["nbytes"]:
            raise ModelFormatError(f"{path}: truncated array {entry['name']}")
        state[entry["name"]] = np.frombuffer(raw, dtype=entry["dtype"]) \
            .reshape(entry["shape"]).copy()
    model.load_state_dict(state)
    model.eval()
    return model


def load_meta(path) -> dict:
    """Read only the metadata dict of an ``.rnm`` file."""
    path = Path(path)
    with open(path, "rb") as fh:
        if fh.read(4) != MAGIC:
            raise ModelFormatError(f"{path}: bad magic")
        (hlen,) = struct.unpack("<Q", fh.read(8))
        header = json.loads(fh.read(hlen).decode("utf-8"))
    return header.get("meta", {})
