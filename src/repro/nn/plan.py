"""Unified plan IR: one lowering pipeline for compiled inference + training.

PRs 1 and 4 grew two parallel compilers — ``compile.py`` walked the
layer list and emitted forward closures, ``compile_train.py`` walked it
again and emitted forward/backward step objects — and every new layer
lowering had to be written (and kept numerically honest) twice.  This
module is the single pipeline both are now built on:

* **Step IR** — a compiled plan is a flat list of :class:`PlanStep`
  objects over raw ndarrays.  Every step owns its per-batch-size
  scratch table and implements ``forward(x, n)``; training-capable
  steps also implement ``backward(g, n, need_gx)`` and write parameter
  gradients straight into views of the plan's flat gradient buffer.
* **Lowering registry** — each layer type registers exactly one
  ``lower(layer, ctx)`` entry (:func:`register_lowering`).  The
  :class:`LoweringContext` tells the lowering whether it is emitting
  for inference or training (``ctx.training``), hands it fusion
  (peeking/consuming a following activation), parameter registration
  and staleness-watch bookkeeping.  ``compile_inference`` is "lower +
  run forward steps"; ``compile_training`` is "lower + forward/backward
  + loss + fused optimizer" — neither owns per-layer emitters anymore.
  Lowerings for the :mod:`repro.nn.layers` zoo live at the bottom of
  this module; recurrent layers register theirs from
  :mod:`repro.nn.recurrent` (imported by the package ``__init__``), so
  out-of-tree layers can plug into both compilers with one entry.
* **Structural fingerprints** — :func:`structural_fingerprint` digests
  a model's layer/parameter structure (shapes, hyperparameters — not
  weight values).  Plans carry it so callers can tell "recompiled, same
  structure" (hot-swap, ``load_state_dict``) from "different model":
  fused-optimizer moments survive the former (warm restarts), engines
  re-adopt warm scratch buffers, and the :class:`~repro.nn.Trainer`
  compile-failure latch is keyed on it.

Numerical contract: training-mode steps replay the autodiff graph's
exact op sequence (same formulas, same association where it matters),
so compiled gradients match the graph to <= 1e-10; inference-mode steps
match the eval-mode graph path to the same tolerance as before.
"""

from __future__ import annotations

import hashlib
import weakref

import numpy as np

from . import functional as F
from . import layers as L

__all__ = [
    "UnsupportedLayerError", "PlanStep", "LoweringContext",
    "register_lowering", "lowering_for", "lower_model",
    "narrow_plan_steps", "structural_fingerprint", "loss_token",
    "FleetStep", "FleetLoweringContext", "register_fleet_lowering",
    "fleet_lowering_for", "lower_fleet", "fleet_fingerprint", "FleetPlan",
]


class UnsupportedLayerError(TypeError):
    """A layer has no compiled lowering; callers fall back to the graph."""


# ----------------------------------------------------------------------
# Structural fingerprints
# ----------------------------------------------------------------------

def _describe(module, out: list, skip=()) -> None:
    out.append(type(module).__name__)
    for name, value in vars(module).items():
        if name == "training" or name.startswith("_"):
            continue
        if skip and any(isinstance(module, t) and name == a
                        for t, a in skip):
            out.append(f"{name}=*")
            continue
        if isinstance(value, L.Parameter):
            out.append(f"{name}:{value.data.shape}:{value.data.dtype}")
        elif isinstance(value, L.Module):
            out.append(f"{name}<")
            _describe(value, out, skip)
            out.append(">")
        elif isinstance(value, np.ndarray):
            # Constants (Standardize stats, BN running stats): shape
            # only — values are captured by reference, not structure.
            out.append(f"{name}:array{value.shape}")
        elif isinstance(value, (bool, int, float, str)):
            out.append(f"{name}={value!r}")
        elif isinstance(value, (list, tuple)):
            out.append(f"{name}[")
            for item in value:
                if isinstance(item, L.Module):
                    _describe(item, out, skip)
            out.append("]")
    out.append(";")


def structural_fingerprint(model: L.Module, extra=()) -> str:
    """Digest of the model's *structure*: layer types, parameter shapes
    and scalar hyperparameters — everything that determines a compiled
    plan's step sequence and flat-buffer layout, and nothing that an
    optimizer step or ``load_state_dict`` changes.  Two models with
    equal fingerprints lower to interchangeable plans (same scratch
    shapes, same gradient layout), which is what makes warm-restarting
    optimizer moments across a recompile safe.
    """
    parts: list = []
    _describe(model, parts)
    parts.extend(str(e) for e in extra)
    return hashlib.blake2b("|".join(parts).encode(),
                           digest_size=16).hexdigest()


#: Per-member-tunable attributes masked out of fleet fingerprints:
#: members of one fleet may differ here without changing the stacked
#: step sequence or any buffer layout.
_FLEET_FINGERPRINT_MASK = ((L.Dropout, "p"),)


def fleet_fingerprint(model: L.Module, extra=()) -> str:
    """:func:`structural_fingerprint` with per-member-tunable scalar
    hyperparameters masked (currently ``Dropout.p``): two models whose
    fleet fingerprints agree lower to the *same* batched step sequence
    with the same slab layout, even though their dropout rates — which
    the batched kernel carries as a per-member ``(K, 1, 1)`` keep
    column — differ.  Everything else (layer types, parameter shapes,
    activation slopes, normalization eps) still participates, so a
    mismatch anywhere that would change a kernel refuses to group.
    """
    parts: list = []
    _describe(model, parts, skip=_FLEET_FINGERPRINT_MASK)
    parts.extend(str(e) for e in extra)
    return hashlib.blake2b("|".join(parts).encode(),
                           digest_size=16).hexdigest()


def loss_token(loss_fn) -> str:
    """Stable identity token for a loss callable (plain or partial)."""
    import functools
    if isinstance(loss_fn, functools.partial):
        inner = loss_token(loss_fn.func)
        kw = ",".join(f"{k}={v!r}"
                      for k, v in sorted((loss_fn.keywords or {}).items()))
        return f"partial({inner},{kw})"
    mod = getattr(loss_fn, "__module__", "")
    name = getattr(loss_fn, "__qualname__", None) or repr(loss_fn)
    return f"{mod}.{name}"


# ----------------------------------------------------------------------
# Step base + scratch helpers
# ----------------------------------------------------------------------

class PlanStep:
    """One plan step owning per-batch-size scratch buffers.

    ``forward(x, n)`` runs the step; training-capable steps also
    implement ``backward(g, n, need_gx)`` (``need_gx=False`` lets the
    first parameterized step skip its input-gradient GEMM).
    ``grad_params`` lists the step's trainable parameters in
    ``named_parameters`` order; the training plan binds matching views
    of its flat gradient buffer via :meth:`bind_grads`.
    """

    __slots__ = ("_bufs", "training")
    #: Parameters whose gradients this step writes (training mode).
    grad_params: tuple = ()

    def __init__(self, training: bool = False):
        self._bufs: dict = {}
        self.training = training

    def scratch(self, n: int) -> dict:
        s = self._bufs.get(n)
        if s is None:
            s = self._bufs[n] = {}
        return s

    def clear(self) -> None:
        self._bufs.clear()

    def bind_grads(self, views) -> None:  # pragma: no cover - interface
        raise UnsupportedLayerError(
            f"{type(self).__name__} does not take gradients")

    def forward(self, x, n):  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, g, n, need_gx):  # pragma: no cover - abstract
        raise NotImplementedError

    def inference_fn(self):
        """Optionally return a specialized ``fwd(x, n)`` closure for
        inference plans.  Hot steps (affine, standardize) close over
        their constants and keep single-call dispatch at the PR-1
        closure cost; the default ``None`` means "use ``forward``".
        Must share :attr:`_bufs` so :meth:`clear` stays effective.
        """
        return None


def _buf(s: dict, key: str, shape: tuple, dtype=np.float64) -> np.ndarray:
    arr = s.get(key)
    if arr is None or arr.shape != shape or arr.dtype != dtype:
        arr = s[key] = np.empty(shape, dtype=dtype)
    return arr


# ----------------------------------------------------------------------
# Activation kernels (forward in place, backward from stashed output)
# ----------------------------------------------------------------------

#: 0-d operand: saves the per-call scalar->array conversion in ufuncs.
_ZERO = np.zeros(())


def _relu_in(buf, _zero=_ZERO):
    np.maximum(buf, _zero, out=buf)


def _tanh_in(buf):
    np.tanh(buf, out=buf)


def _sigmoid_in(buf):
    # 1 / (1 + exp(-x)), the Tensor.sigmoid formula, fully in place.
    np.negative(buf, out=buf)
    np.exp(buf, out=buf)
    buf += 1.0
    np.reciprocal(buf, out=buf)


# Out-of-place variants (single sweep, no input mutation) for the
# standalone-activation inference fast path.

def _relu_out(x, buf, _zero=_ZERO):
    np.maximum(x, _zero, out=buf)


def _tanh_out(x, buf):
    np.tanh(x, out=buf)


def _sigmoid_out(x, buf):
    np.negative(x, out=buf)
    np.exp(buf, out=buf)
    buf += 1.0
    np.reciprocal(buf, out=buf)


def act_kind(layer):
    """``(kind, slope)`` for an activation layer, else ``None``."""
    if isinstance(layer, L.ReLU):
        return ("relu", 0.0)
    if isinstance(layer, L.Tanh):
        return ("tanh", 0.0)
    if isinstance(layer, L.Sigmoid):
        return ("sigmoid", 0.0)
    if isinstance(layer, L.LeakyReLU):
        return ("leaky", layer.slope)
    return None


def _act_forward(kind, slope, z, s):
    """Apply activation in place on the pre-activation buffer ``z``."""
    if kind == "relu":
        _relu_in(z)
    elif kind == "tanh":
        _tanh_in(z)
    elif kind == "sigmoid":
        _sigmoid_in(z)
    else:  # leaky
        mb = _buf(s, "act_mask", z.shape, dtype=bool)
        t = _buf(s, "act_t", z.shape, dtype=z.dtype)
        np.greater(z, 0.0, out=mb)
        t.fill(slope)
        np.copyto(t, 1.0, where=mb)
        np.multiply(z, t, out=z)


def _act_backward(kind, slope, g, out, s):
    """In-place ``g *= act'`` using the stashed activation *output*.

    All four activations admit derivative-from-output forms that match
    the graph path's derivative-from-input values exactly (for ReLU and
    LeakyReLU, ``out > 0`` iff ``pre > 0`` because the slope is
    positive).
    """
    if kind == "relu":
        mb = _buf(s, "act_mask", out.shape, dtype=bool)
        np.greater(out, 0.0, out=mb)
        np.multiply(g, mb, out=g)
    elif kind == "tanh":
        t = _buf(s, "act_t", out.shape)
        np.multiply(out, out, out=t)
        np.subtract(1.0, t, out=t)
        np.multiply(g, t, out=g)
    elif kind == "sigmoid":
        # Graph: g * out * (1 - out), associated as (g*out)*(1-out).
        t = _buf(s, "act_t", out.shape)
        np.multiply(g, out, out=g)
        np.subtract(1.0, out, out=t)
        np.multiply(g, t, out=g)
    else:  # leaky
        mb = _buf(s, "act_mask", out.shape, dtype=bool)
        t = _buf(s, "act_t", out.shape)
        np.greater(out, 0.0, out=mb)
        t.fill(slope)
        np.copyto(t, 1.0, where=mb)
        np.multiply(g, t, out=g)


# ----------------------------------------------------------------------
# Lowering registry + context
# ----------------------------------------------------------------------

_LOWERINGS: dict = {}


def register_lowering(*layer_types):
    """Register ``lower(layer, ctx)`` for one or more layer types.

    The function is looked up through the layer's MRO, so subclasses
    inherit their base lowering unless they register their own.
    """
    def deco(fn):
        for t in layer_types:
            _LOWERINGS[t] = fn
        return fn
    return deco


def lowering_for(layer):
    for klass in type(layer).__mro__:
        fn = _LOWERINGS.get(klass)
        if fn is not None:
            return fn
    return None


def _flatten_layers(model: L.Module, seqs: list) -> list:
    if isinstance(model, L.Sequential):
        # Weak container reference: a plan must not keep its model
        # alive (engines cache plans per model id and rely on the
        # model's death to retire entries — and to hand the retired
        # scratch to a hot-swapped successor).  A dead ref reads as
        # stale.
        seqs.append((weakref.ref(model), model.layers, len(model.layers)))
        out = []
        for layer in model.layers:
            out.extend(_flatten_layers(layer, seqs))
        return out
    return [model]


class LoweringContext:
    """Per-compilation state handed to each layer lowering.

    ``training`` selects the lowering mode.  Lowerings append steps via
    :meth:`emit`, fuse a following activation via :meth:`peek` /
    :meth:`fuse_next`, and register staleness watches and (in training
    mode) trainable parameters.
    """

    __slots__ = ("training", "steps", "watch", "summary", "n_fused",
                 "_layers", "_pos")

    def __init__(self, layers, training: bool):
        self.training = training
        self.steps: list = []
        self.watch: list = []
        self.summary: list = []
        self.n_fused = 0
        self._layers = layers
        self._pos = 0

    # -- walk ------------------------------------------------------------
    def peek(self):
        """The layer following the one being lowered, if any."""
        nxt = self._pos + 1
        return self._layers[nxt] if nxt < len(self._layers) else None

    def fuse_next(self) -> None:
        """Consume the next layer (it was fused into the current step)."""
        self._pos += 1
        self.n_fused += 1

    # -- emission --------------------------------------------------------
    def emit(self, step, note: str) -> None:
        self.steps.append(step)
        self.summary.append(note)

    def note(self, note: str) -> None:
        """Record a summary line without emitting a step (skipped layers)."""
        self.summary.append(note)

    # -- bookkeeping -----------------------------------------------------
    def watch_attr(self, obj, name: str) -> None:
        self.watch.append((obj, name, getattr(obj, name)))

    def watch_params(self, layer) -> None:
        for _name, p in layer.named_parameters():
            self.watch.append((p, "data", p.data))

    def add_param(self, p) -> None:
        """Register a trainable parameter (training mode): validates the
        layout the flat gradient buffer requires and watches rebinds."""
        if p.data.dtype != np.float64 or not p.data.flags["C_CONTIGUOUS"]:
            raise UnsupportedLayerError(
                "compiled training requires contiguous float64 parameters")
        self.watch.append((p, "data", p.data))

    def unsupported(self, layer, why: str | None = None):
        mode = "training" if self.training else "inference"
        reason = why or f"no compiled {mode} lowering for " \
                        f"{type(layer).__name__}"
        raise UnsupportedLayerError(reason)


def lower_model(model: L.Module, training: bool):
    """Lower ``model`` through the registry; returns the filled context
    plus the structural watch list.  Raises
    :class:`UnsupportedLayerError` for layers without an entry (or whose
    entry rejects the requested mode) — callers fall back to the graph.
    """
    struct_watch: list = []
    layers = _flatten_layers(model, struct_watch)
    ctx = LoweringContext(layers, training)
    while ctx._pos < len(layers):
        layer = layers[ctx._pos]
        fn = lowering_for(layer)
        if fn is None:
            raise UnsupportedLayerError(
                f"no compiled lowering for {type(layer).__name__}")
        fn(layer, ctx)
        ctx._pos += 1
    return ctx, struct_watch, len(layers)


# ----------------------------------------------------------------------
# Steps shared by both modes
# ----------------------------------------------------------------------

class AffineStep(PlanStep):
    """Fused ``z = act(x @ W.T + b)``.

    Training backward: ``dz = g * act'(z)`` in place on the incoming
    gradient buffer, then ``gW = dz.T @ x`` and ``gb = dz.sum(0)``
    straight into the plan's flat gradient buffer, and ``gx = dz @ W``
    into step scratch (skipped for the plan's first parameterized
    step).  3-D activations (GRU ``return_sequence=True`` feeding a
    head affine) train through the same kernel: the forward is a
    batched ``np.matmul`` over the leading axes and the weight gradient
    collapses the leading axes into one flattened GEMM — the same sum
    the graph path accumulates per batch entry, within 1e-10.
    Inference forward additionally handles non-2-D inputs and
    non-float64 dtypes (correctness over speed on those rare shapes).
    """

    __slots__ = ("w", "wt", "bias", "b_row", "act", "slope", "gw", "gb",
                 "grad_params", "_narrow")

    def __init__(self, layer, act, training):
        super().__init__(training)
        self.w = layer.weight.data
        self.wt = self.w.T                 # view: in-place updates flow
        self.bias = layer.bias.data if layer.bias is not None else None
        self.b_row = self.bias.reshape(1, -1) if self.bias is not None \
            else None
        if act is None:
            self.act, self.slope = None, 0.0
        else:
            self.act, self.slope = act
        self.gw = self.gb = None
        self.grad_params = (layer.weight, layer.bias) \
            if layer.bias is not None else (layer.weight,)
        self._narrow = self.w.dtype != np.float64

    def bind_grads(self, views):
        self.gw = views[0]
        self.gb = views[1] if len(views) > 1 else None

    def forward(self, x, n):
        if x.ndim != 2:
            if self.training:
                s = self.scratch(n)
                z = s.get("z")
                shape = x.shape[:-1] + (self.wt.shape[1],)
                if z is None or z.shape != shape:
                    z = s["z"] = np.empty(shape)
                np.matmul(x, self.wt, out=z)
                if self.b_row is not None:
                    np.add(z, self.bias, out=z)
                if self.act is not None:
                    _act_forward(self.act, self.slope, z, s)
                s["x"] = x
                return z
            y = np.matmul(x, self.wt)      # rare inference shapes
            if self.bias is not None:
                y = y + self.bias
            if self.act is not None:
                _act_forward(self.act, self.slope, y, {})
            return y
        s = self.scratch(n)
        z = s.get("z")
        # With float64 weights the result dtype is float64 for any
        # input, so only non-f64 weights need the per-call dtype check.
        if z is None or z.shape[0] != x.shape[0] or \
                (self._narrow and
                 z.dtype != np.result_type(x.dtype, self.w.dtype)):
            z = s["z"] = np.empty(
                (x.shape[0], self.wt.shape[1]),
                dtype=np.result_type(x.dtype, self.w.dtype))
        np.dot(x, self.wt, out=z)
        if self.b_row is not None:
            np.add(z, self.b_row, out=z)
        if self.act is not None:
            _act_forward(self.act, self.slope, z, s)
        if self.training:
            s["x"] = x
        return z

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        if self.act is not None:
            _act_backward(self.act, self.slope, g, s["z"], s)
        x = s["x"]
        if g.ndim != 2:
            # Leading axes collapse into one GEMM: the same per-entry
            # outer-product sum the graph accumulates batch-by-batch.
            out_f, in_f = self.w.shape
            np.dot(g.reshape(-1, out_f).T, x.reshape(-1, in_f),
                   out=self.gw)
            if self.gb is not None:
                np.add.reduce(g.reshape(-1, out_f), axis=0, out=self.gb)
            if not need_gx:
                return None
            gx = _buf(s, "gx", g.shape[:-1] + (in_f,))
            np.matmul(g, self.w, out=gx)
            return gx
        np.dot(g.T, x, out=self.gw)
        if self.gb is not None:
            # add.reduce is what np.sum dispatches to (bit-identical to
            # the graph path's unbroadcast sum) minus wrapper overhead.
            np.add.reduce(g, axis=0, out=self.gb)
        if not need_gx:
            return None
        gx = _buf(s, "gx", (g.shape[0], self.w.shape[1]))
        np.dot(g, self.w, out=gx)
        return gx

    def inference_fn(self):
        # Leaky needs mask scratch; its generic path is fine (rare in
        # deployed shapes, which fuse ReLU/Tanh/Sigmoid).
        if self.training or self.act == "leaky":
            return None
        bufs = self._bufs                  # z cached directly per batch
        w, wt, b_row = self.w, self.wt, self.b_row
        narrow = self._narrow
        out_features = wt.shape[1]
        act = {None: None, "relu": _relu_in, "tanh": _tanh_in,
               "sigmoid": _sigmoid_in}[self.act]
        generic = self.forward

        def fwd(x, n, dot=np.dot, add=np.add, empty=np.empty,
                result_type=np.result_type):
            if x.ndim != 2:
                return generic(x, n)       # rare shapes
            z = bufs.get(n)
            if z is None or z.shape[0] != x.shape[0] or \
                    (narrow and z.dtype != result_type(x.dtype, w.dtype)):
                z = bufs[n] = empty((x.shape[0], out_features),
                                    dtype=result_type(x.dtype, w.dtype))
            dot(x, wt, out=z)
            if b_row is not None:
                add(z, b_row, out=z)
            if act is not None:
                act(z)
            return z

        return fwd


class ActStep(PlanStep):
    """Standalone activation (not fused behind an affine/conv step)."""

    __slots__ = ("act", "slope")

    def __init__(self, act, training):
        super().__init__(training)
        self.act, self.slope = act

    def forward(self, x, n):
        s = self.scratch(n)
        z = s.get("z")
        if z is None or z.shape != x.shape or z.dtype != x.dtype:
            z = s["z"] = np.empty_like(x)
        np.copyto(z, x)
        _act_forward(self.act, self.slope, z, s)
        return z

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        _act_backward(self.act, self.slope, g, s["z"], s)
        return g

    def inference_fn(self):
        # Single out-of-place sweep (the PR-1 kernels) instead of
        # copy-then-in-place; leaky keeps the generic path (needs mask
        # scratch).
        if self.training or self.act == "leaky":
            return None
        bufs = self._bufs
        act = {"relu": _relu_out, "tanh": _tanh_out,
               "sigmoid": _sigmoid_out}[self.act]

        def fwd(x, n, empty_like=np.empty_like):
            z = bufs.get(n)
            if z is None or z.shape != x.shape or z.dtype != x.dtype:
                z = bufs[n] = empty_like(x)
            act(x, z)
            return z

        return fwd


class DropoutStep(PlanStep):
    """Inverted dropout with cached mask buffers (training mode only;
    inference lowers dropout to identity).

    Draws from the layer's own RNG with ``Generator.random(out=...)``,
    which consumes exactly the same stream as the graph path's
    ``rng.random(x.shape)`` — fixed-seed training is bit-for-bit
    reproducible across the two paths.
    """

    __slots__ = ("layer", "keep")

    def __init__(self, layer):
        super().__init__(True)
        self.layer = layer
        self.keep = 1.0 - layer.p

    def forward(self, x, n):
        s = self.scratch(n)
        r = _buf(s, "r", x.shape)
        self.layer.rng.random(out=r)
        mb = _buf(s, "mask_bool", x.shape, dtype=bool)
        np.less(r, self.keep, out=mb)
        m = _buf(s, "mask", x.shape)
        np.divide(mb, self.keep, out=m)
        z = _buf(s, "z", x.shape)
        np.multiply(x, m, out=z)
        return z

    def backward(self, g, n, need_gx):
        np.multiply(g, self._bufs[n]["mask"], out=g)
        return g


class BatchNormStep(PlanStep):
    """BatchNorm1d: batch stats + running updates in training mode,
    frozen running stats in inference mode.

    The training forward mirrors the graph ops (``mean = sum * (1/n)``,
    biased variance); the backward is the classic batch-norm adjoint
    derived from those exact ops — gradient flows through the batch
    mean and variance as well as the normalized activations.
    """

    __slots__ = ("layer", "gw", "gb", "grad_params")

    def __init__(self, layer, training):
        super().__init__(training)
        self.layer = layer
        self.gw = self.gb = None
        self.grad_params = (layer.weight, layer.bias)

    def bind_grads(self, views):
        self.gw, self.gb = views

    def forward(self, x, n):
        lay = self.layer
        if not self.training:
            mu = lay.running_mean.reshape(1, -1)
            denom = np.sqrt(lay.running_var.reshape(1, -1) + lay.eps)
            return (x - mu) / denom * lay.weight.data + lay.bias.data
        if x.ndim != 2:
            raise UnsupportedLayerError(
                f"BatchNorm1d expects (N, F) inputs, got {x.shape}")
        s = self.scratch(n)
        inv_n = 1.0 / n
        mu = x.sum(axis=0, keepdims=True) * inv_n
        c = _buf(s, "c", x.shape)
        np.subtract(x, mu, out=c)
        sq = _buf(s, "sq", x.shape)
        np.multiply(c, c, out=sq)
        var = sq.sum(axis=0, keepdims=True) * inv_n
        # Rebinding assignments, exactly like the graph path (so any
        # inference plan watching the running stats goes stale too).
        lay.running_mean = ((1 - lay.momentum) * lay.running_mean
                            + lay.momentum * mu.ravel())
        lay.running_var = ((1 - lay.momentum) * lay.running_var
                           + lay.momentum * var.ravel())
        std = np.sqrt(var + lay.eps)
        norm = _buf(s, "norm", x.shape)
        np.divide(c, std, out=norm)
        z = _buf(s, "z", x.shape)
        np.multiply(norm, lay.weight.data, out=z)
        np.add(z, lay.bias.data, out=z)
        s["std"] = std
        s["inv_n"] = inv_n
        return z

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        c, sq, norm, std = s["c"], s["sq"], s["norm"], s["std"]
        inv_n = s["inv_n"]
        np.multiply(g, norm, out=sq)           # sq reused as scratch
        np.add.reduce(sq, axis=0, out=self.gw)
        np.add.reduce(g, axis=0, out=self.gb)
        dn = _buf(s, "dn", g.shape)
        np.multiply(g, self.layer.weight.data, out=dn)
        # d std via norm = c / std (the truediv adjoint, unbroadcast).
        np.multiply(dn, c, out=sq)
        np.negative(sq, out=sq)
        np.divide(sq, std * std, out=sq)
        dstd = sq.sum(axis=0, keepdims=True)
        dvar = dstd * 0.5 / std
        np.divide(dn, std, out=dn)             # dn = dc (from norm)
        gci = dvar * inv_n
        np.multiply(c, gci, out=sq)
        np.add(sq, sq, out=sq)                 # 2 * c * dvar / n
        np.add(dn, sq, out=dn)                 # total dc
        if not need_gx:
            return None
        dmu = dn.sum(axis=0, keepdims=True)
        np.negative(dmu, out=dmu)
        np.multiply(dmu, inv_n, out=dmu)
        gx = _buf(s, "gx", g.shape)
        np.add(dn, dmu, out=gx)
        return gx


class LayerNormStep(PlanStep):
    """LayerNorm over the trailing axis.

    Training mode mirrors :class:`BatchNormStep`'s adjoint structure
    with the reduction moved to the trailing axis (per-row statistics,
    no running state): the forward replays the graph ops (``mean =
    sum * (1/d)``, biased variance, ``(var + eps).sqrt()``), the
    backward flows gradient through the row mean and variance exactly
    as the Tensor adjoints compose.
    """

    __slots__ = ("layer", "gw", "gb", "grad_params")

    def __init__(self, layer, training: bool = False):
        super().__init__(training)
        self.layer = layer
        self.gw = self.gb = None
        self.grad_params = (layer.weight, layer.bias) if training else ()

    def bind_grads(self, views):
        self.gw, self.gb = views

    def forward(self, x, n):
        lay = self.layer
        d = x.shape[-1]
        if not self.training:
            # Matches Tensor.mean/var: sum * (1/n), biased variance.
            mu = x.sum(axis=-1, keepdims=True) * (1.0 / d)
            centered = x - mu
            var = (centered * centered).sum(axis=-1, keepdims=True) \
                * (1.0 / d)
            return centered / np.sqrt(var + lay.eps) * lay.weight.data \
                + lay.bias.data
        s = self.scratch(n)
        inv_d = 1.0 / d
        mu = x.sum(axis=-1, keepdims=True) * inv_d
        c = _buf(s, "c", x.shape)
        np.subtract(x, mu, out=c)
        sq = _buf(s, "sq", x.shape)
        np.multiply(c, c, out=sq)
        var = sq.sum(axis=-1, keepdims=True) * inv_d
        std = np.sqrt(var + lay.eps)
        norm = _buf(s, "norm", x.shape)
        np.divide(c, std, out=norm)
        z = _buf(s, "z", x.shape)
        np.multiply(norm, lay.weight.data, out=z)
        np.add(z, lay.bias.data, out=z)
        s["std"] = std
        s["inv_d"] = inv_d
        return z

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        c, sq, norm, std = s["c"], s["sq"], s["norm"], s["std"]
        inv_d = s["inv_d"]
        d_feat = self.gw.shape[0]
        np.multiply(g, norm, out=sq)           # sq reused as scratch
        np.add.reduce(sq.reshape(-1, d_feat), axis=0, out=self.gw)
        np.add.reduce(g.reshape(-1, d_feat), axis=0, out=self.gb)
        dn = _buf(s, "dn", g.shape)
        np.multiply(g, self.layer.weight.data, out=dn)
        # d std via norm = c / std (the truediv adjoint, unbroadcast).
        np.multiply(dn, c, out=sq)
        np.negative(sq, out=sq)
        np.divide(sq, std * std, out=sq)
        dstd = sq.sum(axis=-1, keepdims=True)
        dvar = dstd * 0.5 / std
        np.divide(dn, std, out=dn)             # dn = dc (from norm)
        gci = dvar * inv_d
        np.multiply(c, gci, out=sq)
        np.add(sq, sq, out=sq)                 # 2 * c * dvar / d
        np.add(dn, sq, out=dn)                 # total dc
        if not need_gx:
            return None
        dmu = dn.sum(axis=-1, keepdims=True)
        np.negative(dmu, out=dmu)
        np.multiply(dmu, inv_d, out=dmu)
        gx = _buf(s, "gx", g.shape)
        np.add(dn, dmu, out=gx)
        return gx


class StandardizeStep(PlanStep):
    """Frozen ``(x - mean) * (1/std)`` — constants, gradient is a scale."""

    __slots__ = ("mean", "inv_std")

    def __init__(self, layer, training):
        super().__init__(training)
        self.mean = layer.mean
        self.inv_std = 1.0 / layer.std

    def forward(self, x, n):
        s = self.scratch(n)
        z = s.get("z")
        dtype = np.result_type(x.dtype, self.mean.dtype)
        if z is None or z.shape != x.shape or z.dtype != dtype:
            z = s["z"] = np.empty(x.shape, dtype=dtype)
        np.subtract(x, self.mean, out=z)
        np.multiply(z, self.inv_std, out=z)
        return z

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        np.multiply(g, self.inv_std, out=g)
        return g

    def inference_fn(self):
        if self.training:
            return None
        bufs = self._bufs
        mean, inv_std = self.mean, self.inv_std
        mdtype = mean.dtype

        def fwd(x, n, sub=np.subtract, mul=np.multiply,
                empty=np.empty, result_type=np.result_type):
            z = bufs.get(n)
            dtype = result_type(x.dtype, mdtype)
            if z is None or z.shape != x.shape or z.dtype != dtype:
                z = bufs[n] = empty(x.shape, dtype=dtype)
            sub(x, mean, out=z)
            mul(z, inv_std, out=z)
            return z

        return fwd


class DestandardizeStep(PlanStep):
    """Frozen ``x * std + mean`` output head."""

    __slots__ = ("mean", "std")

    def __init__(self, layer, training):
        super().__init__(training)
        self.mean = layer.mean
        self.std = layer.std

    def forward(self, x, n):
        s = self.scratch(n)
        z = s.get("z")
        dtype = np.result_type(x.dtype, self.std.dtype)
        if z is None or z.shape != x.shape or z.dtype != dtype:
            z = s["z"] = np.empty(x.shape, dtype=dtype)
        np.multiply(x, self.std, out=z)
        np.add(z, self.mean, out=z)
        return z

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        np.multiply(g, self.std, out=g)
        return g

    def inference_fn(self):
        if self.training:
            return None
        bufs = self._bufs
        mean, std = self.mean, self.std
        sdtype = std.dtype

        def fwd(x, n, add=np.add, mul=np.multiply,
                empty=np.empty, result_type=np.result_type):
            z = bufs.get(n)
            dtype = result_type(x.dtype, sdtype)
            if z is None or z.shape != x.shape or z.dtype != dtype:
                z = bufs[n] = empty(x.shape, dtype=dtype)
            mul(x, std, out=z)
            add(z, mean, out=z)
            return z

        return fwd


class FlattenStep(PlanStep):
    __slots__ = ("start_dim",)

    def __init__(self, start_dim, training):
        super().__init__(training)
        self.start_dim = start_dim

    def forward(self, x, n):
        if self.training:
            self.scratch(n)["shape"] = x.shape
        return x.reshape(x.shape[:self.start_dim] + (-1,))

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        return g.reshape(self._bufs[n]["shape"])


# ----------------------------------------------------------------------
# Convolution steps (im2col + GEMM, backward mirrors functional.conv2d)
# ----------------------------------------------------------------------

class Conv2dStep(PlanStep):
    """2-D cross-correlation.  Forward mirrors ``functional.conv2d``
    (im2col + GEMM); training backward replays its adjoint exactly —
    ``gW`` from the gathered columns, ``gx`` via ``col2im``.  Inference
    mode optionally fuses a following activation in place.

    :class:`Conv1dStep` reuses this machinery through the same
    unit-height reshape route ``functional.conv1d`` takes, overriding
    only the window geometry and the 3-D <-> 4-D lift/lower hooks.
    """

    __slots__ = ("layer", "wmat_t", "act", "slope", "gw", "gb",
                 "grad_params", "kh", "kw", "padding")

    def __init__(self, layer, act, training):
        super().__init__(training)
        self.layer = layer
        c_out = layer.weight.data.shape[0]
        self.wmat_t = layer.weight.data.reshape(c_out, -1).T  # param view
        if act is None:
            self.act, self.slope = None, 0.0
        else:
            self.act, self.slope = act
        self.gw = self.gb = None
        self.grad_params = (layer.weight, layer.bias) \
            if layer.bias is not None else (layer.weight,)
        self.kh = self.kw = layer.kernel_size
        self.padding = getattr(layer, "padding", 0)

    def bind_grads(self, views):
        self.gw = views[0]
        self.gb = views[1] if len(views) > 1 else None

    # 3-D <-> unit-height-4-D hooks, identity for the 2-D case.
    def _lift(self, arr):
        return arr

    def _lower(self, out4):
        return out4

    def forward(self, x, n):
        lay = self.layer
        x4 = self._lift(x)
        cols = F.im2col(x4, self.kh, self.kw, lay.stride, self.padding)
        out = cols @ self.wmat_t               # (N, oh, ow, C_out)
        out = out.transpose(0, 3, 1, 2)
        if lay.bias is not None:
            out = out + lay.bias.data.reshape(1, -1, 1, 1)
        out = self._lower(out)
        if self.act is not None:
            out = np.ascontiguousarray(out)
            _act_forward(self.act, self.slope, out, self.scratch(n))
        if self.training:
            s = self.scratch(n)
            s["cols"] = cols
            s["x4_shape"] = x4.shape
            s["out"] = out
        return out

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        if self.act is not None:
            _act_backward(self.act, self.slope, g, s["out"], s)
        lay = self.layer
        cols = s["cols"]
        c_out = self.gw.shape[0]
        # Mirrors the functional.conv2d adjoint op-for-op.
        g4 = self._lift(g)
        gmat = g4.transpose(0, 2, 3, 1).reshape(-1, c_out)
        cols_flat = cols.reshape(-1, cols.shape[-1])
        np.dot(gmat.T, cols_flat, out=self.gw.reshape(c_out, -1))
        if self.gb is not None:
            g4.sum(axis=(0, 2, 3), out=self.gb)
        if not need_gx:
            return None
        gcols = (gmat @ self.wmat_t.T).reshape(cols.shape)
        gx4 = F.col2im(gcols, s["x4_shape"], self.kh, self.kw,
                       lay.stride, self.padding)
        return self._lower(gx4)


class Conv1dStep(Conv2dStep):
    """1-D cross-correlation via the 2-D kernel with a unit height —
    the exact reshape route ``functional.conv1d`` takes, so gradients
    match the graph path bit-for-bit up to GEMM accumulation order."""

    __slots__ = ()

    def __init__(self, layer, act, training):
        super().__init__(layer, act, training)
        self.kh, self.kw = 1, layer.kernel_size
        self.padding = 0

    def _lift(self, arr):
        b, c, length = arr.shape
        return arr.reshape(b, c, 1, length)

    def _lower(self, out4):
        return out4.reshape(out4.shape[0], out4.shape[1], -1)


# ----------------------------------------------------------------------
# Pooling / crop-pad steps
# ----------------------------------------------------------------------

class MaxPool2dStep(PlanStep):
    __slots__ = ("kernel", "stride")

    def __init__(self, kernel, stride, training):
        super().__init__(training)
        self.kernel = kernel
        self.stride = stride

    def forward(self, x, n):
        out, arg, _oh, _ow = F.max_pool2d_raw(x, self.kernel, self.stride)
        if self.training:
            s = self.scratch(n)
            s["arg"] = arg
            s["x_shape"] = x.shape
        return out

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        s = self._bufs[n]
        arg = s["arg"]
        gx = np.zeros(s["x_shape"])
        # Scatter each window gradient back to the argmax position —
        # the functional.max_pool2d adjoint, verbatim.
        ih = arg // self.kernel
        iw = arg % self.kernel
        n_idx, c_idx, oh_idx, ow_idx = np.indices(arg.shape)
        rows = oh_idx * self.stride + ih
        cols_ = ow_idx * self.stride + iw
        np.add.at(gx, (n_idx, c_idx, rows, cols_), g)
        return gx


class MaxPool1dStep(PlanStep):
    __slots__ = ("kernel", "stride")

    def __init__(self, kernel, stride, training=False):
        super().__init__(training)
        self.kernel = kernel
        self.stride = stride

    def forward(self, x, n):
        if self.kernel == 1 and not self.training:
            return x                 # 1-wide windows at stride 1: identity
        out, arg = F.max_pool1d_raw(x, self.kernel, self.stride)
        if self.training:
            s = self.scratch(n)
            s["arg"] = arg
            s["x_shape"] = x.shape
        return out

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        s = self._bufs[n]
        arg = s["arg"]
        gx = np.zeros(s["x_shape"])
        # Scatter each window gradient back to the argmax position —
        # the functional.max_pool1d adjoint, verbatim.
        n_idx, c_idx, ol_idx = np.indices(arg.shape)
        cols_ = ol_idx * self.stride + arg
        np.add.at(gx, (n_idx, c_idx, cols_), g)
        return gx


class AvgPool2dStep(PlanStep):
    __slots__ = ("kernel", "stride")

    def __init__(self, kernel, stride, training=False):
        super().__init__(training)
        self.kernel = kernel
        self.stride = stride

    def forward(self, x, n):
        out = F.avg_pool2d_raw(x, self.kernel, self.stride)
        if self.training:
            s = self.scratch(n)
            s["x_shape"] = x.shape
            s["out_hw"] = out.shape[-2:]
        return out

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        s = self._bufs[n]
        out_h, out_w = s["out_hw"]
        gx = np.zeros(s["x_shape"])
        # Spread each window gradient evenly over its source cells —
        # the functional.avg_pool2d adjoint, verbatim.
        gs = g * (1.0 / (self.kernel * self.kernel))
        for ih in range(self.kernel):
            for iw in range(self.kernel):
                gx[:, :, ih:ih + self.stride * out_h:self.stride,
                   iw:iw + self.stride * out_w:self.stride] += gs
        return gx


class CropPad2dStep(PlanStep):
    """Crop/zero-pad trailing spatial dims; backward un-pads then
    un-crops (the adjoints of ``Tensor.pad`` and ``__getitem__``)."""

    __slots__ = ("height", "width")

    def __init__(self, height, width, training):
        super().__init__(training)
        self.height = height
        self.width = width

    def forward(self, x, n):
        if self.training:
            self.scratch(n)["x_shape"] = x.shape
        h, w = x.shape[-2], x.shape[-1]
        if h > self.height or w > self.width:
            x = x[..., :min(h, self.height), :min(w, self.width)]
            h, w = x.shape[-2], x.shape[-1]
        if self.training:
            self._bufs[n]["crop_shape"] = x.shape
        if h < self.height or w < self.width:
            pad = [(0, 0)] * (x.ndim - 2)
            pad += [(0, self.height - h), (0, self.width - w)]
            x = np.pad(x, pad)
        return x

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        s = self._bufs[n]
        crop_shape, x_shape = s["crop_shape"], s["x_shape"]
        ch, cw = crop_shape[-2], crop_shape[-1]
        if g.shape != crop_shape:                    # un-pad: slice
            g = g[..., :ch, :cw]
        if crop_shape != x_shape:                    # un-crop: scatter
            gx = np.zeros(x_shape)
            gx[..., :ch, :cw] = g
            return gx
        return g


# ----------------------------------------------------------------------
# Lowerings for the repro.nn.layers zoo
# ----------------------------------------------------------------------

@register_lowering(L.Identity)
def _lower_identity(layer, ctx):
    ctx.note("Identity: skipped")


@register_lowering(L.Dropout)
def _lower_dropout(layer, ctx):
    if ctx.training and layer.p > 0.0:
        ctx.emit(DropoutStep(layer), f"Dropout(p={layer.p}): cached masks")
    elif ctx.training:
        ctx.note("Dropout(p=0): skipped")
    else:
        ctx.note("Dropout: skipped (eval)")


def _lower_fusable(layer, ctx, step_cls, label):
    """Shared weight+bias lowering with a fused following activation —
    the Linear/Conv2d/Conv1d protocol (params registered, activation
    peeked and consumed, fusion counted)."""
    nxt = ctx.peek()
    act = act_kind(nxt) if nxt is not None else None
    if ctx.training:
        ctx.add_param(layer.weight)
        if layer.bias is not None:
            ctx.add_param(layer.bias)
    else:
        ctx.watch_params(layer)
    step = step_cls(layer, act, ctx.training)
    name = type(layer).__name__
    if act is not None:
        ctx.emit(step, f"{name}+{type(nxt).__name__}: fused {label}")
        ctx.fuse_next()
    else:
        ctx.emit(step, f"{name}: {label}")


@register_lowering(L.Linear)
def _lower_linear(layer, ctx):
    _lower_fusable(layer, ctx, AffineStep, "affine")


@register_lowering(L.ReLU, L.Tanh, L.Sigmoid, L.LeakyReLU)
def _lower_activation(layer, ctx):
    ctx.emit(ActStep(act_kind(layer), ctx.training),
             f"{type(layer).__name__}: activation")


@register_lowering(L.BatchNorm1d)
def _lower_batchnorm(layer, ctx):
    if ctx.training:
        ctx.add_param(layer.weight)
        ctx.add_param(layer.bias)
        ctx.emit(BatchNormStep(layer, True),
                 "BatchNorm1d: batch stats + running update")
    else:
        ctx.watch_params(layer)
        ctx.watch_attr(layer, "running_mean")
        ctx.watch_attr(layer, "running_var")
        ctx.emit(BatchNormStep(layer, False), "BatchNorm1d: running stats")


@register_lowering(L.LayerNorm)
def _lower_layernorm(layer, ctx):
    if ctx.training:
        ctx.add_param(layer.weight)
        ctx.add_param(layer.bias)
        ctx.emit(LayerNormStep(layer, True),
                 "LayerNorm: trailing-axis stats")
        return
    ctx.watch_params(layer)
    ctx.emit(LayerNormStep(layer), "LayerNorm: fused normalize")


@register_lowering(L.Standardize)
def _lower_standardize(layer, ctx):
    ctx.watch_attr(layer, "mean")
    ctx.watch_attr(layer, "std")
    ctx.emit(StandardizeStep(layer, ctx.training),
             "Standardize: affine constants")


@register_lowering(L.Destandardize)
def _lower_destandardize(layer, ctx):
    ctx.watch_attr(layer, "mean")
    ctx.watch_attr(layer, "std")
    ctx.emit(DestandardizeStep(layer, ctx.training),
             "Destandardize: affine constants")


@register_lowering(L.Flatten)
def _lower_flatten(layer, ctx):
    ctx.emit(FlattenStep(layer.start_dim, ctx.training),
             "Flatten: reshape")


@register_lowering(L.Conv2d)
def _lower_conv2d(layer, ctx):
    _lower_fusable(layer, ctx, Conv2dStep, "im2col")


@register_lowering(L.Conv1d)
def _lower_conv1d(layer, ctx):
    _lower_fusable(layer, ctx, Conv1dStep, "im2col")


@register_lowering(L.MaxPool2d)
def _lower_maxpool2d(layer, ctx):
    ctx.emit(MaxPool2dStep(layer.kernel_size, layer.stride, ctx.training),
             "MaxPool2d: strided view")


@register_lowering(L.MaxPool1d)
def _lower_maxpool1d(layer, ctx):
    ctx.emit(MaxPool1dStep(layer.kernel_size, layer.stride, ctx.training),
             "MaxPool1d: strided view")


@register_lowering(L.AvgPool2d)
def _lower_avgpool2d(layer, ctx):
    ctx.emit(AvgPool2dStep(layer.kernel_size, layer.stride, ctx.training),
             "AvgPool2d: strided view")


@register_lowering(L.CropPad2d)
def _lower_croppad2d(layer, ctx):
    ctx.emit(CropPad2dStep(layer.height, layer.width, ctx.training),
             "CropPad2d: slice/pad")


# ----------------------------------------------------------------------
# Mixed precision: narrowing lowered inference steps
# ----------------------------------------------------------------------

#: Inference steps a narrowed plan supports without per-step changes:
#: they hold no float64 constants, so the activation dtype flows
#: through them unchanged.
_DTYPE_TRANSPARENT_STEPS = (ActStep, FlattenStep, MaxPool1dStep,
                            MaxPool2dStep, AvgPool2dStep, CropPad2dStep)


def narrow_plan_steps(steps, dtype) -> None:
    """Cast the frozen constants of lowered *inference* steps to ``dtype``.

    This is the one cast of the mixed-precision design: weights, biases
    and standardize statistics are copied into ``dtype`` here, at
    compile time, and every hot-path kernel then runs natively in that
    dtype (the steps' existing ``result_type`` scratch logic keeps the
    activations there — no per-call casts).  The cast breaks the
    float64 plans' write-through aliasing: a narrowed plan snapshots the
    weights, so in-place parameter edits do not flow into it (rebinding
    the arrays still trips the staleness watch and recompiles).

    Steps that keep live float64 state (BatchNorm/LayerNorm running
    stats, conv im2col weights, GRU windows) are refused with
    :class:`UnsupportedLayerError` — callers fall back to the float64
    plan rather than silently promoting mid-plan.
    """
    dtype = np.dtype(dtype)
    for step in steps:
        if isinstance(step, AffineStep):
            step.w = np.ascontiguousarray(step.w, dtype=dtype)
            step.wt = step.w.T
            if step.bias is not None:
                step.bias = step.bias.astype(dtype)
                step.b_row = step.bias.reshape(1, -1)
            step._narrow = step.w.dtype != np.float64
        elif isinstance(step, StandardizeStep):
            step.mean = step.mean.astype(dtype)
            step.inv_std = step.inv_std.astype(dtype)
        elif isinstance(step, DestandardizeStep):
            step.mean = step.mean.astype(dtype)
            step.std = step.std.astype(dtype)
        elif not isinstance(step, _DTYPE_TRANSPARENT_STEPS):
            raise UnsupportedLayerError(
                f"no {dtype.name} lowering for {type(step).__name__}; "
                "narrowed plans support the MLP step set (affine, "
                "activation, standardize, flatten, pooling, crop/pad)")


# ----------------------------------------------------------------------
# Fleet IR: one batched step list over K same-fingerprint members
# ----------------------------------------------------------------------

class FleetStep(PlanStep):
    """One plan step batched over a leading member axis of size K.

    Fleet steps see activations shaped ``(K, B, ...)`` — or the shared
    ``(B, F)`` input before the first member-specific step, which
    broadcasts through the batched kernels (``np.matmul`` and the
    elementwise ufuncs treat a missing leading axis as "same rows for
    every member").  Member ``k``'s slice of every buffer is computed
    with exactly the ops its own single-model plan would run, so
    stacked outputs are bitwise-equal to sequential ones.

    ``n_active`` is the training plan's member-compaction cursor:
    early-stopped members are swapped to the tail (:meth:`swap_members`)
    and every kernel runs on the ``[:n_active]`` row prefix, so a
    finished candidate stops contributing compute.  Inference plans
    keep it at ``k``.

    Stacked tensors are declared, not allocated, by the step:
    :meth:`param_sources` / :meth:`const_sources` name the per-member
    arrays as ``(holder, attr)`` pairs and the owning plan binds
    ``(K, *shape)`` views of its flat slab via :meth:`bind_params` /
    :meth:`bind_consts` — which is what makes a member hot-swap a
    single slab row copy.
    """

    __slots__ = ("k", "n_active", "pos")

    def __init__(self, k: int, training: bool):
        super().__init__(training)
        self.k = k
        self.n_active = k
        self.pos = -1            # flattened-layer index (set by emit)

    # -- slab sources -----------------------------------------------------
    def param_sources(self) -> tuple:
        """Trainable stacked tensors: a tuple of K-tuples of
        ``(holder, attr)`` pairs, in the member order the step was
        built with.  Read via ``getattr`` so hot-swap re-reads live
        arrays."""
        return ()

    def const_sources(self) -> tuple:
        """Frozen per-member constants (standardize stats, running
        stats at inference), same layout as :meth:`param_sources`."""
        return ()

    def bind_params(self, views) -> None:
        pass

    def bind_consts(self, views) -> None:
        pass

    def slab_updated(self) -> None:
        """Hook run after any slab row copy (derived constants such as
        the standardize reciprocal recompute here)."""

    # -- member management ------------------------------------------------
    def set_member(self, i: int, layer) -> None:
        """Rebind member ``i`` to a hot-swapped layer (inference)."""

    def swap_members(self, i: int, j: int) -> None:
        """Swap per-member *step-owned* state for rows ``i``/``j``
        (training compaction; slab rows are swapped by the plan)."""

    def snapshot_row(self, i: int):
        """Step-owned per-member state to capture alongside a best-epoch
        parameter snapshot (BatchNorm running stats); ``None`` when the
        step has none."""
        return None

    def restore_row(self, i: int, snap) -> None:
        """Restore a :meth:`snapshot_row` capture into row ``i``."""

    def sync_members(self) -> None:
        """Write step-owned per-member state back into the member
        layers (end of training)."""

    def eval_forward(self, x, n):
        """Evaluation-mode forward for training plans: dropout becomes
        identity, BatchNorm reads running stats; everything else is the
        training forward (which matches inference numerics)."""
        return self.forward(x, n)


class FleetAffineStep(FleetStep):
    """Fused batched ``z_k = act(x_k @ W_k.T + b_k)`` over K members.

    The weight view is ``(K, out, in)`` (each member's own C-contiguous
    ``Linear`` layout stacked); the forward multiplies by its
    ``(K, in, out)`` transpose view, which BLAS executes as K
    independent GEMMs — bitwise-identical to each member's
    ``np.dot(x, W.T)``.
    """

    __slots__ = ("layers", "w", "wt", "b", "act", "slope", "gw", "gb")

    def __init__(self, layers, act, training):
        super().__init__(len(layers), training)
        self.layers = list(layers)
        self.w = self.wt = self.b = None
        if act is None:
            self.act, self.slope = None, 0.0
        else:
            self.act, self.slope = act
        self.gw = self.gb = None

    def param_sources(self):
        srcs = [tuple((lay.weight, "data") for lay in self.layers)]
        if self.layers[0].bias is not None:
            srcs.append(tuple((lay.bias, "data") for lay in self.layers))
        return tuple(srcs)

    def bind_params(self, views):
        self.w = views[0]                  # (K, out, in) slab view
        self.wt = self.w.transpose(0, 2, 1)
        self.b = views[1][:, None, :] if len(views) > 1 else None

    def bind_grads(self, views):
        self.gw = views[0]
        self.gb = views[1] if len(views) > 1 else None

    def set_member(self, i, layer):
        self.layers[i] = layer

    def swap_members(self, i, j):
        self.layers[i], self.layers[j] = self.layers[j], self.layers[i]

    def forward(self, x, n):
        na = self.n_active
        s = self.scratch(n)
        wt = self.wt if na == self.k else self.wt[:na]
        shape = (na, x.shape[-2], wt.shape[-1])
        z = s.get("z")
        if z is None or z.shape != shape:
            z = s["z"] = np.empty(shape, dtype=wt.dtype)
        np.matmul(x, wt, out=z)
        if self.b is not None:
            np.add(z, self.b[:na], out=z)
        if self.act is not None:
            _act_forward(self.act, self.slope, z, s)
        if self.training:
            s["x"] = x
        return z

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        na = g.shape[0]
        if self.act is not None:
            _act_backward(self.act, self.slope, g, s["z"], s)
        x = s["x"]
        # (na, out, B) @ (na|1, B, in): a shared 2-D x broadcasts.
        np.matmul(g.transpose(0, 2, 1), x, out=self.gw[:na])
        if self.gb is not None:
            np.add.reduce(g, axis=1, out=self.gb[:na])
        if not need_gx:
            return None
        gx = _buf(s, "gx", (na, g.shape[1], self.w.shape[2]))
        np.matmul(g, self.w[:na], out=gx)
        return gx


class FleetActStep(FleetStep):
    """Standalone activation over the stacked stream (shared kernel —
    fingerprint equality guarantees one kind/slope for all members)."""

    __slots__ = ("act", "slope")

    def __init__(self, k, act, training):
        super().__init__(k, training)
        self.act, self.slope = act

    def forward(self, x, n):
        s = self.scratch(n)
        z = s.get("z")
        if z is None or z.shape != x.shape or z.dtype != x.dtype:
            z = s["z"] = np.empty(x.shape, dtype=x.dtype)
        np.copyto(z, x)
        _act_forward(self.act, self.slope, z, s)
        return z

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        _act_backward(self.act, self.slope, g, s["z"], s)
        return g


class FleetDropoutStep(FleetStep):
    """Inverted dropout with a per-member ``(K, 1, 1)`` keep column.

    Each member's mask draws from its own layer RNG into its row slice
    (same stream consumption as the member's sequential
    :class:`DropoutStep`), so fixed-seed fleet training is bit-for-bit
    the sequential trajectory.  Deactivated members stop drawing —
    exactly like the sequential trainer they mirror stopped training.
    """

    __slots__ = ("layers", "keep")

    def __init__(self, layers):
        super().__init__(len(layers), True)
        self.layers = list(layers)
        self.keep = np.array([[[1.0 - lay.p]] for lay in layers])

    def set_member(self, i, layer):
        self.layers[i] = layer
        self.keep[i, 0, 0] = 1.0 - layer.p

    def swap_members(self, i, j):
        self.layers[i], self.layers[j] = self.layers[j], self.layers[i]
        self.keep[[i, j]] = self.keep[[j, i]]

    def forward(self, x, n):
        na = self.n_active
        s = self.scratch(n)
        if x.ndim == 2:
            x = np.broadcast_to(x, (na,) + x.shape)
        r = _buf(s, "r", x.shape)
        for i in range(na):
            self.layers[i].rng.random(out=r[i])
        keep = self.keep[:na]
        mb = _buf(s, "mask_bool", x.shape, dtype=bool)
        np.less(r, keep, out=mb)
        m = _buf(s, "mask", x.shape)
        np.divide(mb, keep, out=m)
        z = _buf(s, "z", x.shape)
        np.multiply(x, m, out=z)
        return z

    def backward(self, g, n, need_gx):
        np.multiply(g, self._bufs[n]["mask"], out=g)
        return g

    def eval_forward(self, x, n):
        return x


class FleetBatchNormStep(FleetStep):
    """BatchNorm1d over the stacked stream.

    Training keeps the running statistics as step-owned ``(K, F)``
    stacks (updated with the exact sequential update, elementwise per
    member) and :meth:`sync_members` writes them back to the member
    layers; inference reads frozen running stats out of the plan slab.
    Reductions move from axis 0 to axis 1 — per-member summation order
    is unchanged, so member slices stay bitwise-sequential.
    """

    __slots__ = ("layers", "w", "b", "run_mu", "run_var", "gw", "gb",
                 "eps", "momentum")

    def __init__(self, layers, training):
        super().__init__(len(layers), training)
        self.layers = list(layers)
        self.eps = layers[0].eps
        self.momentum = layers[0].momentum
        self.w = self.b = None
        self.gw = self.gb = None
        if training:
            self.run_mu = np.stack([lay.running_mean for lay in layers])
            self.run_var = np.stack([lay.running_var for lay in layers])
        else:
            self.run_mu = self.run_var = None

    def param_sources(self):
        return (tuple((lay.weight, "data") for lay in self.layers),
                tuple((lay.bias, "data") for lay in self.layers))

    def const_sources(self):
        if self.training:
            return ()
        return (tuple((lay, "running_mean") for lay in self.layers),
                tuple((lay, "running_var") for lay in self.layers))

    def bind_params(self, views):
        self.w = views[0][:, None, :]
        self.b = views[1][:, None, :]

    def bind_consts(self, views):
        self.run_mu = views[0]
        self.run_var = views[1]

    def bind_grads(self, views):
        self.gw, self.gb = views

    def set_member(self, i, layer):
        self.layers[i] = layer

    def swap_members(self, i, j):
        self.layers[i], self.layers[j] = self.layers[j], self.layers[i]
        if self.training:
            self.run_mu[[i, j]] = self.run_mu[[j, i]]
            self.run_var[[i, j]] = self.run_var[[j, i]]

    def snapshot_row(self, i):
        if not self.training:
            return None
        return (self.run_mu[i].copy(), self.run_var[i].copy())

    def restore_row(self, i, snap):
        if snap is None:
            return
        self.run_mu[i] = snap[0]
        self.run_var[i] = snap[1]

    def sync_members(self):
        """Write the stacked running stats back into the member layers
        (rebinding, like the sequential step, so watching inference
        plans go stale)."""
        if not self.training:
            return
        for i, lay in enumerate(self.layers):
            lay.running_mean = self.run_mu[i].copy()
            lay.running_var = self.run_var[i].copy()

    def forward(self, x, n):
        na = self.n_active
        s = self.scratch(n)
        if x.ndim == 2:
            x = np.broadcast_to(x, (na,) + x.shape)
        if not self.training:
            mu = self.run_mu[:na, None, :]
            denom = np.sqrt(self.run_var[:na, None, :] + self.eps)
            return (x - mu) / denom * self.w[:na] + self.b[:na]
        inv_n = 1.0 / n
        mu = x.sum(axis=1, keepdims=True) * inv_n
        c = _buf(s, "c", x.shape)
        np.subtract(x, mu, out=c)
        sq = _buf(s, "sq", x.shape)
        np.multiply(c, c, out=sq)
        var = sq.sum(axis=1, keepdims=True) * inv_n
        m = self.momentum
        self.run_mu[:na] = ((1 - m) * self.run_mu[:na]
                            + m * mu[:, 0, :])
        self.run_var[:na] = ((1 - m) * self.run_var[:na]
                             + m * var[:, 0, :])
        std = np.sqrt(var + self.eps)
        norm = _buf(s, "norm", x.shape)
        np.divide(c, std, out=norm)
        z = _buf(s, "z", x.shape)
        np.multiply(norm, self.w[:na], out=z)
        np.add(z, self.b[:na], out=z)
        s["std"] = std
        s["inv_n"] = inv_n
        return z

    def eval_forward(self, x, n):
        na = self.n_active
        if x.ndim == 2:
            x = np.broadcast_to(x, (na,) + x.shape)
        mu = self.run_mu[:na, None, :]
        denom = np.sqrt(self.run_var[:na, None, :] + self.eps)
        return (x - mu) / denom * self.w[:na] + self.b[:na]

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        na = g.shape[0]
        c, sq, norm, std = s["c"], s["sq"], s["norm"], s["std"]
        inv_n = s["inv_n"]
        np.multiply(g, norm, out=sq)
        np.add.reduce(sq, axis=1, out=self.gw[:na])
        np.add.reduce(g, axis=1, out=self.gb[:na])
        dn = _buf(s, "dn", g.shape)
        np.multiply(g, self.w[:na], out=dn)
        np.multiply(dn, c, out=sq)
        np.negative(sq, out=sq)
        np.divide(sq, std * std, out=sq)
        dstd = sq.sum(axis=1, keepdims=True)
        dvar = dstd * 0.5 / std
        np.divide(dn, std, out=dn)
        gci = dvar * inv_n
        np.multiply(c, gci, out=sq)
        np.add(sq, sq, out=sq)
        np.add(dn, sq, out=dn)
        if not need_gx:
            return None
        dmu = dn.sum(axis=1, keepdims=True)
        np.negative(dmu, out=dmu)
        np.multiply(dmu, inv_n, out=dmu)
        gx = _buf(s, "gx", g.shape)
        np.add(dn, dmu, out=gx)
        return gx


class FleetLayerNormStep(FleetStep):
    """LayerNorm over the trailing axis, stacked weight/bias rows."""

    __slots__ = ("layers", "w", "b", "gw", "gb", "eps")

    def __init__(self, layers, training):
        super().__init__(len(layers), training)
        self.layers = list(layers)
        self.eps = layers[0].eps
        self.w = self.b = None
        self.gw = self.gb = None

    def param_sources(self):
        return (tuple((lay.weight, "data") for lay in self.layers),
                tuple((lay.bias, "data") for lay in self.layers))

    def bind_params(self, views):
        self.w = views[0][:, None, :]
        self.b = views[1][:, None, :]

    def bind_grads(self, views):
        self.gw, self.gb = views

    def set_member(self, i, layer):
        self.layers[i] = layer

    def swap_members(self, i, j):
        self.layers[i], self.layers[j] = self.layers[j], self.layers[i]

    def forward(self, x, n):
        na = self.n_active
        s = self.scratch(n)
        if x.ndim == 2:
            x = np.broadcast_to(x, (na,) + x.shape)
        d = x.shape[-1]
        inv_d = 1.0 / d
        if not self.training:
            mu = x.sum(axis=-1, keepdims=True) * inv_d
            centered = x - mu
            var = (centered * centered).sum(axis=-1, keepdims=True) * inv_d
            return centered / np.sqrt(var + self.eps) * self.w[:na] \
                + self.b[:na]
        mu = x.sum(axis=-1, keepdims=True) * inv_d
        c = _buf(s, "c", x.shape)
        np.subtract(x, mu, out=c)
        sq = _buf(s, "sq", x.shape)
        np.multiply(c, c, out=sq)
        var = sq.sum(axis=-1, keepdims=True) * inv_d
        std = np.sqrt(var + self.eps)
        norm = _buf(s, "norm", x.shape)
        np.divide(c, std, out=norm)
        z = _buf(s, "z", x.shape)
        np.multiply(norm, self.w[:na], out=z)
        np.add(z, self.b[:na], out=z)
        s["std"] = std
        s["inv_d"] = inv_d
        return z

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        na = g.shape[0]
        c, sq, norm, std = s["c"], s["sq"], s["norm"], s["std"]
        inv_d = s["inv_d"]
        np.multiply(g, norm, out=sq)
        np.add.reduce(sq, axis=1, out=self.gw[:na])
        np.add.reduce(g, axis=1, out=self.gb[:na])
        dn = _buf(s, "dn", g.shape)
        np.multiply(g, self.w[:na], out=dn)
        np.multiply(dn, c, out=sq)
        np.negative(sq, out=sq)
        np.divide(sq, std * std, out=sq)
        dstd = sq.sum(axis=-1, keepdims=True)
        dvar = dstd * 0.5 / std
        np.divide(dn, std, out=dn)
        gci = dvar * inv_d
        np.multiply(c, gci, out=sq)
        np.add(sq, sq, out=sq)
        np.add(dn, sq, out=dn)
        if not need_gx:
            return None
        dmu = dn.sum(axis=-1, keepdims=True)
        np.negative(dmu, out=dmu)
        np.multiply(dmu, inv_d, out=dmu)
        gx = _buf(s, "gx", g.shape)
        np.add(dn, dmu, out=gx)
        return gx


class FleetStandardizeStep(FleetStep):
    """Frozen per-member ``(x - mean_k) * (1/std_k)`` input head.

    Usually the first step: a shared 2-D input broadcasts against the
    ``(K, 1, F)`` stat columns and comes out stacked.
    """

    __slots__ = ("layers", "mean", "std", "inv_std")

    def __init__(self, layers, training):
        super().__init__(len(layers), training)
        self.layers = list(layers)
        self.mean = self.std = self.inv_std = None

    def const_sources(self):
        return (tuple((lay, "mean") for lay in self.layers),
                tuple((lay, "std") for lay in self.layers))

    def bind_consts(self, views):
        self.mean = views[0][:, None, :]
        self.std = views[1][:, None, :]
        self.inv_std = np.empty_like(self.std)
        self.slab_updated()

    def slab_updated(self):
        np.divide(1.0, self.std, out=self.inv_std)

    def set_member(self, i, layer):
        self.layers[i] = layer

    def swap_members(self, i, j):
        self.layers[i], self.layers[j] = self.layers[j], self.layers[i]

    def forward(self, x, n):
        na = self.n_active
        s = self.scratch(n)
        mean, inv = self.mean[:na], self.inv_std[:na]
        shape = (na, x.shape[-2], x.shape[-1])
        z = s.get("z")
        if z is None or z.shape != shape:
            z = s["z"] = np.empty(shape, dtype=inv.dtype)
        np.subtract(x, mean, out=z)
        np.multiply(z, inv, out=z)
        return z

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        np.multiply(g, self.inv_std[:g.shape[0]], out=g)
        return g


class FleetDestandardizeStep(FleetStep):
    """Frozen per-member ``x * std_k + mean_k`` output head."""

    __slots__ = ("layers", "mean", "std")

    def __init__(self, layers, training):
        super().__init__(len(layers), training)
        self.layers = list(layers)
        self.mean = self.std = None

    def const_sources(self):
        return (tuple((lay, "mean") for lay in self.layers),
                tuple((lay, "std") for lay in self.layers))

    def bind_consts(self, views):
        self.mean = views[0][:, None, :]
        self.std = views[1][:, None, :]

    def set_member(self, i, layer):
        self.layers[i] = layer

    def swap_members(self, i, j):
        self.layers[i], self.layers[j] = self.layers[j], self.layers[i]

    def forward(self, x, n):
        na = self.n_active
        s = self.scratch(n)
        shape = (na, x.shape[-2], x.shape[-1])
        z = s.get("z")
        if z is None or z.shape != shape:
            z = s["z"] = np.empty(shape, dtype=self.std.dtype)
        np.multiply(x, self.std[:na], out=z)
        np.add(z, self.mean[:na], out=z)
        return z

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        np.multiply(g, self.std[:g.shape[0]], out=g)
        return g


class FleetFlattenStep(FleetStep):
    """Member ``Flatten(start_dim=s)`` on a stacked stream reshapes
    from axis ``s + 1``; a still-shared (member-shaped) input keeps the
    member axis numbering."""

    __slots__ = ("start_dim", "member_ndim")

    def __init__(self, start_dim, member_ndim, k, training):
        super().__init__(k, training)
        self.start_dim = start_dim
        self.member_ndim = member_ndim

    def forward(self, x, n):
        if self.training:
            self.scratch(n)["shape"] = x.shape
        cut = self.start_dim + (1 if x.ndim > self.member_ndim else 0)
        return x.reshape(x.shape[:cut] + (-1,))

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        return g.reshape(self._bufs[n]["shape"])


# -- fleet lowering registry + context ---------------------------------

_FLEET_LOWERINGS: dict = {}


def register_fleet_lowering(*layer_types):
    """Register ``lower(layers, ctx)`` for one or more layer types;
    ``layers`` is the K members' layer at the current position (MRO
    lookup, like :func:`register_lowering`)."""
    def deco(fn):
        for t in layer_types:
            _FLEET_LOWERINGS[t] = fn
        return fn
    return deco


def fleet_lowering_for(layer):
    for klass in type(layer).__mro__:
        fn = _FLEET_LOWERINGS.get(klass)
        if fn is not None:
            return fn
    return None


class FleetLoweringContext:
    """Lockstep lowering state over K structurally identical models."""

    __slots__ = ("training", "k", "steps", "summary", "n_fused",
                 "_members", "_pos")

    def __init__(self, members, training: bool):
        self.training = training
        self.k = len(members)
        self.steps: list = []
        self.summary: list = []
        self.n_fused = 0
        self._members = members
        self._pos = 0

    def layers(self) -> list:
        """The K member layers at the current position."""
        return [m[self._pos] for m in self._members]

    def peek(self):
        """Member 0's next layer (activation fusion probe; equal
        fingerprints guarantee every member has the same type there)."""
        nxt = self._pos + 1
        return self._members[0][nxt] if nxt < len(self._members[0]) \
            else None

    def fuse_next(self) -> None:
        self._pos += 1
        self.n_fused += 1

    def emit(self, step, note: str) -> None:
        step.pos = self._pos
        self.steps.append(step)
        self.summary.append(note)

    def note(self, note: str) -> None:
        self.summary.append(note)

    def unsupported(self, layer, why: str | None = None):
        mode = "training" if self.training else "inference"
        raise UnsupportedLayerError(
            why or f"no fleet {mode} lowering for {type(layer).__name__}")


def lower_fleet(models, training: bool):
    """Lower K same-fleet-fingerprint models into one batched step
    list.  Structurally mixed groups refuse with
    :class:`UnsupportedLayerError` (callers fall back to per-model
    plans), as do layers without a fleet lowering entry (conv/pool/
    recurrent members keep their single-model path).
    """
    models = list(models)
    if not models:
        raise ValueError("lower_fleet requires at least one model")
    fps = {fleet_fingerprint(m) for m in models}
    if len(fps) > 1:
        raise UnsupportedLayerError(
            f"fleet members are structurally different: {len(fps)} "
            f"distinct fingerprints across {len(models)} models")
    struct_watch: list = []
    members = [_flatten_layers(m, struct_watch) for m in models]
    ctx = FleetLoweringContext(members, training)
    n_layers = len(members[0])
    while ctx._pos < n_layers:
        layers = ctx.layers()
        fn = fleet_lowering_for(layers[0])
        if fn is None:
            raise UnsupportedLayerError(
                f"no fleet lowering for {type(layers[0]).__name__}")
        fn(layers, ctx)
        ctx._pos += 1
    return ctx, struct_watch, n_layers


@register_fleet_lowering(L.Identity)
def _fleet_identity(layers, ctx):
    ctx.note("Identity: skipped")


@register_fleet_lowering(L.Dropout)
def _fleet_dropout(layers, ctx):
    if ctx.training and any(lay.p > 0.0 for lay in layers):
        ctx.emit(FleetDropoutStep(layers),
                 "Dropout xK: per-member keep column")
    else:
        ctx.note("Dropout: skipped")


@register_fleet_lowering(L.Linear)
def _fleet_linear(layers, ctx):
    nxt = ctx.peek()
    act = act_kind(nxt) if nxt is not None else None
    step = FleetAffineStep(layers, act, ctx.training)
    if act is not None:
        ctx.emit(step, f"Linear+{type(nxt).__name__} xK: fused batched "
                       f"affine")
        ctx.fuse_next()
    else:
        ctx.emit(step, "Linear xK: batched affine")


@register_fleet_lowering(L.ReLU, L.Tanh, L.Sigmoid, L.LeakyReLU)
def _fleet_activation(layers, ctx):
    ctx.emit(FleetActStep(ctx.k, act_kind(layers[0]), ctx.training),
             f"{type(layers[0]).__name__} xK: activation")


@register_fleet_lowering(L.BatchNorm1d)
def _fleet_batchnorm(layers, ctx):
    ctx.emit(FleetBatchNormStep(layers, ctx.training),
             "BatchNorm1d xK: batched stats"
             if ctx.training else "BatchNorm1d xK: running stats")


@register_fleet_lowering(L.LayerNorm)
def _fleet_layernorm(layers, ctx):
    ctx.emit(FleetLayerNormStep(layers, ctx.training),
             "LayerNorm xK: trailing-axis stats")


@register_fleet_lowering(L.Standardize)
def _fleet_standardize(layers, ctx):
    ctx.emit(FleetStandardizeStep(layers, ctx.training),
             "Standardize xK: stacked constants")


@register_fleet_lowering(L.Destandardize)
def _fleet_destandardize(layers, ctx):
    ctx.emit(FleetDestandardizeStep(layers, ctx.training),
             "Destandardize xK: stacked constants")


@register_fleet_lowering(L.Flatten)
def _fleet_flatten(layers, ctx):
    member_ndim = 2        # fleet zoo is the MLP family: (B, F) members
    ctx.emit(FleetFlattenStep(layers[0].start_dim, member_ndim, ctx.k,
                              ctx.training),
             "Flatten xK: reshape")


# -- the stacked inference plan ----------------------------------------

class FleetPlan:
    """Stacked inference over K same-fingerprint models.

    One flat ``(K, n_slab)`` weight slab (float64 by default; pass
    ``dtype=np.float32`` for a narrowed slab that halves the memory
    traffic of the bandwidth-bound K-row GEMMs) holds every member's
    parameters *and* frozen constants; steps hold ``(K, *shape)`` views
    into it, so hot-swapping member ``k`` is one row-slice copy
    (:meth:`replace_member`) and the next stacked forward reads the new
    weights — no rebuild, no other member disturbed.

    ``__call__`` accepts a shared ``(B, F)`` input (broadcast to every
    member) or a stacked ``(K, B, F)`` batch and returns ``(K, B,
    *out)`` stacked outputs; row ``k`` is bitwise-equal to member
    ``k``'s own compiled forward.
    """

    __slots__ = ("k", "dtype", "fingerprint", "summary", "n_layers",
                 "n_fused", "slab", "n_slab", "_steps", "_segs", "_watch",
                 "_keys")

    def __init__(self, models, dtype=np.float64):
        models = list(models)
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"fleet plans support float64/float32, not {self.dtype}")
        ctx, _struct, n_layers = lower_fleet(models, training=False)
        self.k = ctx.k
        self.fingerprint = fleet_fingerprint(models[0], extra=("infer",))
        self.summary = tuple(ctx.summary)
        self.n_layers = n_layers
        self.n_fused = ctx.n_fused
        self._steps = ctx.steps
        self._keys: set = set()
        self._build_slab()

    # -- slab construction ------------------------------------------------
    def _seg_sources(self, step, kind):
        return step.param_sources() if kind == "p" else \
            step.const_sources()

    def _build_slab(self):
        segs = []
        offset = 0
        for step in self._steps:
            for kind in ("p", "c"):
                for si, src in enumerate(self._seg_sources(step, kind)):
                    arr0 = getattr(*src[0])
                    if arr0.dtype != np.float64:
                        raise UnsupportedLayerError(
                            "fleet plans require float64 member tensors")
                    segs.append((step, kind, si, offset,
                                 offset + arr0.size, arr0.shape))
                    offset += arr0.size
        self._segs = segs
        self.n_slab = offset
        # The slab carries the plan dtype: member tensors stay float64
        # at the source, and a narrowed plan casts exactly once per
        # member — on the row copy in :meth:`refresh_member` (which is
        # also the hot-swap path, so swapped-in weights cast on swap).
        self.slab = np.empty((self.k, offset), dtype=self.dtype)
        self._watch = [None] * self.k
        for k in range(self.k):
            self.refresh_member(k)
        for step in self._steps:
            pviews, cviews = [], []
            for (s2, kind, si, lo, hi, shape) in segs:
                if s2 is step:
                    view = self.slab[:, lo:hi].reshape((self.k,) + shape)
                    (pviews if kind == "p" else cviews).append(view)
            if pviews:
                step.bind_params(pviews)
            if cviews:
                step.bind_consts(cviews)
        for step in self._steps:
            step.slab_updated()

    # -- member staleness / hot-swap --------------------------------------
    def refresh_member(self, k: int) -> None:
        """Re-copy member ``k``'s live arrays into slab row ``k`` and
        re-arm its staleness watch."""
        watch = []
        for (step, kind, si, lo, hi, shape) in self._segs:
            holder, attr = self._seg_sources(step, kind)[si][k]
            arr = getattr(holder, attr)
            if arr.shape != shape:
                raise UnsupportedLayerError(
                    f"member {k} tensor {attr} changed shape "
                    f"{shape} -> {arr.shape}")
            self.slab[k, lo:hi] = arr.reshape(-1)
            watch.append((holder, attr, arr))
        self._watch[k] = watch
        for step in self._steps:
            step.slab_updated()

    def member_stale(self, k: int) -> bool:
        """Member ``k``'s slab row no longer matches its live arrays
        (parameter rebind — e.g. ``load_state_dict``)."""
        return any(getattr(holder, attr) is not arr
                   for holder, attr, arr in self._watch[k])

    def stale_members(self) -> list:
        return [k for k in range(self.k) if self.member_stale(k)]

    def replace_member(self, k: int, model) -> None:
        """Hot-swap member ``k`` to ``model`` (same fleet fingerprint):
        rebinds the step layer slots and copies exactly one slab row."""
        if fleet_fingerprint(model, extra=("infer",)) != self.fingerprint:
            raise UnsupportedLayerError(
                f"replacement model for member {k} has a different "
                "fleet fingerprint")
        layers = _flatten_layers(model, [])
        for step in self._steps:
            if step.pos >= 0:
                step.set_member(k, layers[step.pos])
        self.refresh_member(k)

    def member_digest(self, k: int) -> str:
        """BLAKE2b digest of member ``k``'s slab row (memo identity)."""
        return hashlib.blake2b(self.slab[k].tobytes(),
                               digest_size=16).hexdigest()

    # -- execution ---------------------------------------------------------
    def __call__(self, x) -> np.ndarray:
        x = np.asarray(x)
        if x.dtype != self.dtype:
            x = x.astype(self.dtype)
        n = x.shape[-2] if x.ndim >= 2 else len(x)
        if n not in self._keys:
            if len(self._keys) > 16:
                for step in self._steps:
                    step.clear()
                self._keys.clear()
            self._keys.add(n)
        h = x
        for step in self._steps:
            h = step.forward(h, n)
        return h

    def member_outputs(self, outputs, k: int) -> np.ndarray:
        return outputs[k]

    def __repr__(self):
        return (f"FleetPlan(k={self.k}, steps={len(self._steps)}, "
                f"fingerprint={self.fingerprint[:8]})")
