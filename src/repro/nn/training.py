"""Training loop utilities: dataset splitting, minibatching, Trainer.

Implements the supervised workflow of §III: the data collected by the
runtime (inputs/outputs pairs) is split into training/validation per the
paper's "best practices" citation, and the BO inner loop trains each
candidate with these utilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .layers import Module
from .loss import mse_loss, rmse
from .optim import Adam, Optimizer
from .tensor import Tensor, no_grad

__all__ = ["train_val_split", "iterate_minibatches", "Trainer", "TrainResult",
           "normalize_stats", "Normalizer"]


def train_val_split(x: np.ndarray, y: np.ndarray, val_fraction: float = 0.2,
                    rng: np.random.Generator | None = None):
    """Shuffle and split arrays into train/validation partitions."""
    if len(x) != len(y):
        raise ValueError(f"x and y disagree on sample count: {len(x)} vs {len(y)}")
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1): {val_fraction}")
    rng = rng or np.random.default_rng()
    n = len(x)
    perm = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    return (x[train_idx], y[train_idx]), (x[val_idx], y[val_idx])


def iterate_minibatches(x: np.ndarray, y: np.ndarray, batch_size: int,
                        rng: np.random.Generator | None = None,
                        shuffle: bool = True):
    """Yield ``(xb, yb)`` minibatches covering the dataset once."""
    n = len(x)
    order = (rng or np.random.default_rng()).permutation(n) if shuffle \
        else np.arange(n)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        yield x[idx], y[idx]


@dataclass
class Normalizer:
    """Feature-wise standardization fitted on training data only."""

    mean: np.ndarray
    std: np.ndarray

    def transform(self, x: np.ndarray) -> np.ndarray:
        return (x - self.mean) / self.std

    def inverse(self, x: np.ndarray) -> np.ndarray:
        return x * self.std + self.mean


def normalize_stats(x: np.ndarray, axis=0, eps: float = 1e-8) -> Normalizer:
    mean = x.mean(axis=axis, keepdims=True)
    std = x.std(axis=axis, keepdims=True)
    std = np.where(std < eps, 1.0, std)
    return Normalizer(mean=mean, std=std)


@dataclass
class TrainResult:
    """Outcome of a training run; ``history`` holds per-epoch val loss."""

    best_val_loss: float
    epochs_run: int
    history: list = field(default_factory=list)


class Trainer:
    """Minibatch trainer with early stopping on validation loss.

    Parameters mirror the Table V hyperparameter space: learning rate,
    weight decay and batch size are the knobs the BO inner loop turns.
    """

    def __init__(self, model: Module, lr: float = 1e-3, weight_decay: float = 0.0,
                 batch_size: int = 64, max_epochs: int = 50, patience: int = 8,
                 loss_fn=mse_loss, optimizer: Optimizer | None = None,
                 seed: int = 0, grad_clip: float | None = None,
                 scheduler=None):
        self.model = model
        self.batch_size = int(batch_size)
        self.max_epochs = max_epochs
        self.patience = patience
        self.loss_fn = loss_fn
        self.rng = np.random.default_rng(seed)
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr,
                                           weight_decay=weight_decay)
        self.grad_clip = grad_clip
        #: Optional LR scheduler; stepped once per epoch.  Plateau-style
        #: schedulers (taking the validation loss) are detected by
        #: signature.
        self.scheduler = scheduler

    def _clip_gradients(self) -> None:
        if self.grad_clip is None:
            return
        total = 0.0
        params = [p for p in self.optimizer.params if p.grad is not None]
        for p in params:
            total += float((p.grad * p.grad).sum())
        norm = np.sqrt(total)
        if norm > self.grad_clip:
            scale = self.grad_clip / (norm + 1e-12)
            for p in params:
                p.grad = p.grad * scale

    def _step_scheduler(self, val_loss: float) -> None:
        if self.scheduler is None:
            return
        try:
            self.scheduler.step(val_loss)
        except TypeError:
            self.scheduler.step()

    def _epoch(self, x: np.ndarray, y: np.ndarray) -> float:
        self.model.train()
        total, count = 0.0, 0
        for xb, yb in iterate_minibatches(x, y, self.batch_size, self.rng):
            self.optimizer.zero_grad()
            pred = self.model(Tensor(xb))
            loss = self.loss_fn(pred, Tensor(yb))
            loss.backward()
            self._clip_gradients()
            self.optimizer.step()
            total += loss.item() * len(xb)
            count += len(xb)
        return total / max(count, 1)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Validation loss without touching the autograd graph."""
        self.model.eval()
        with no_grad():
            pred = self.model(Tensor(x))
            loss = self.loss_fn(pred, Tensor(y))
        return loss.item()

    def fit(self, x_train: np.ndarray, y_train: np.ndarray,
            x_val: np.ndarray, y_val: np.ndarray) -> TrainResult:
        best = float("inf")
        best_state = None
        stale = 0
        history = []
        epochs = 0
        for epoch in range(self.max_epochs):
            epochs = epoch + 1
            train_loss = self._epoch(x_train, y_train)
            val_loss = self.evaluate(x_val, y_val)
            self._step_scheduler(val_loss)
            history.append({"epoch": epoch, "train": train_loss, "val": val_loss})
            if val_loss < best - 1e-12:
                best = val_loss
                best_state = self.model.state_dict()
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return TrainResult(best_val_loss=best, epochs_run=epochs, history=history)

    def validation_rmse(self, x_val: np.ndarray, y_val: np.ndarray) -> float:
        self.model.eval()
        with no_grad():
            pred = self.model(Tensor(x_val)).numpy()
        return rmse(pred, y_val)
