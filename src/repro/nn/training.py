"""Training loop utilities: dataset splitting, minibatching, Trainer.

Implements the supervised workflow of §III: the data collected by the
runtime (inputs/outputs pairs) is split into training/validation per the
paper's "best practices" citation, and the BO inner loop trains each
candidate with these utilities.

``Trainer`` runs minibatches through the compiled training fast path
(:mod:`repro.nn.compile_train`) by default: a fused forward/backward
NumPy plan plus a vectorized optimizer, reproducing the graph path's
numerics while skipping its per-intermediate ``Tensor`` allocations.
Models, losses or optimizers without a compiled lowering fall back to
the autodiff graph automatically (``Trainer.compiled_active`` /
``Trainer.compile_fallback`` report which path ran).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .compile import UnsupportedLayerError
from .layers import Module
from .loss import mse_loss, rmse
from .optim import Adam, Optimizer
from .tensor import Tensor, no_grad

__all__ = ["train_val_split", "iterate_minibatches", "Trainer", "TrainResult",
           "normalize_stats", "Normalizer"]


def train_val_split(x: np.ndarray, y: np.ndarray, val_fraction: float = 0.2,
                    rng: np.random.Generator | None = None,
                    return_indices: bool = False):
    """Shuffle and split arrays into train/validation partitions.

    With ``return_indices`` the ``(train_idx, val_idx)`` row-index
    arrays are returned instead of the gathered partitions, for
    callers that reweight or resample a partition (e.g. the retrain
    worker's recency bootstrap) without forking the split convention.
    """
    if len(x) != len(y):
        raise ValueError(f"x and y disagree on sample count: {len(x)} vs {len(y)}")
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1): {val_fraction}")
    rng = rng or np.random.default_rng()
    n = len(x)
    perm = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    if return_indices:
        return train_idx, val_idx
    return (x[train_idx], y[train_idx]), (x[val_idx], y[val_idx])


def iterate_minibatches(x: np.ndarray, y: np.ndarray, batch_size: int,
                        rng: np.random.Generator | None = None,
                        shuffle: bool = True):
    """Yield ``(xb, yb)`` minibatches covering the dataset once."""
    n = len(x)
    order = (rng or np.random.default_rng()).permutation(n) if shuffle \
        else np.arange(n)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        yield x[idx], y[idx]


@dataclass
class Normalizer:
    """Feature-wise standardization fitted on training data only."""

    mean: np.ndarray
    std: np.ndarray

    def transform(self, x: np.ndarray) -> np.ndarray:
        return (x - self.mean) / self.std

    def inverse(self, x: np.ndarray) -> np.ndarray:
        return x * self.std + self.mean


def normalize_stats(x: np.ndarray, axis=0, eps: float = 1e-8) -> Normalizer:
    mean = x.mean(axis=axis, keepdims=True)
    std = x.std(axis=axis, keepdims=True)
    std = np.where(std < eps, 1.0, std)
    return Normalizer(mean=mean, std=std)


@dataclass
class TrainResult:
    """Outcome of a training run; ``history`` holds per-epoch val loss."""

    best_val_loss: float
    epochs_run: int
    history: list = field(default_factory=list)


class Trainer:
    """Minibatch trainer with early stopping on validation loss.

    Parameters mirror the Table V hyperparameter space: learning rate,
    weight decay and batch size are the knobs the BO inner loop turns.
    """

    def __init__(self, model: Module, lr: float = 1e-3, weight_decay: float = 0.0,
                 batch_size: int = 64, max_epochs: int = 50, patience: int = 8,
                 loss_fn=mse_loss, optimizer: Optimizer | None = None,
                 seed: int = 0, grad_clip: float | None = None,
                 scheduler=None, compiled: bool = True):
        self.model = model
        self.batch_size = int(batch_size)
        self.max_epochs = max_epochs
        self.patience = patience
        self.loss_fn = loss_fn
        self.rng = np.random.default_rng(seed)
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr,
                                           weight_decay=weight_decay)
        self.grad_clip = grad_clip
        #: Optional LR scheduler; stepped once per epoch.  Plateau-style
        #: schedulers (taking the validation loss) are detected by
        #: signature.
        self.scheduler = scheduler
        #: Use the compiled training fast path when the model/loss/
        #: optimizer support it; falls back to the graph automatically.
        self.compiled = compiled
        self._plan = None
        self._fused = None
        self._compile_failed = False
        #: True while epochs actually run through the compiled plan.
        self.compiled_active = False
        #: Human-readable reason the last compile attempt fell back.
        self.compile_fallback: str | None = None

    # -- compiled fast path ------------------------------------------------
    def _ensure_compiled(self, x: np.ndarray, y: np.ndarray) -> bool:
        """(Re)compile the fused training plan if needed; False => graph.

        The plan is cached across epochs and revalidated against
        parameter rebinding (``load_state_dict``) via its staleness
        watch.  Any unsupported layer, loss, optimizer or dtype falls
        back silently — the graph path is always correct.
        """
        if not self.compiled:
            return False
        if self._plan is not None and not self._plan.stale():
            return True
        if self._compile_failed:
            # One failed attempt covers the whole fit: neither the
            # layer set nor the loss changes between epochs.  fit()
            # clears the latch, so a later fit (e.g. with float64 data
            # this time) retries once.
            return False
        self._plan = self._fused = None
        self.compiled_active = False
        if np.asarray(x).dtype != np.float64 or \
                np.asarray(y).dtype != np.float64:
            self.compile_fallback = "training arrays are not float64"
            self._compile_failed = True
            return False
        try:
            from .compile_train import compile_training
            plan = compile_training(self.model, self.loss_fn)
            fused = plan.bind_optimizer(self.optimizer)
        except UnsupportedLayerError as exc:
            self.compile_fallback = str(exc)
            self._compile_failed = True
            return False
        self._plan, self._fused = plan, fused
        self.compiled_active = True
        self.compile_fallback = None
        return True

    def _clip_gradients(self) -> None:
        if self.grad_clip is None:
            return
        total = 0.0
        params = [p for p in self.optimizer.params if p.grad is not None]
        for p in params:
            total += float(np.vdot(p.grad, p.grad))
        norm = np.sqrt(total)
        if norm > self.grad_clip:
            scale = self.grad_clip / (norm + 1e-12)
            for p in params:
                p.grad *= scale

    def _step_scheduler(self, val_loss: float) -> None:
        if self.scheduler is None:
            return
        try:
            self.scheduler.step(val_loss)
        except TypeError:
            self.scheduler.step()

    def _epoch(self, x: np.ndarray, y: np.ndarray) -> float:
        self.model.train()
        if self._ensure_compiled(x, y):
            return self._epoch_compiled(x, y)
        total, count = 0.0, 0
        for xb, yb in iterate_minibatches(x, y, self.batch_size, self.rng):
            self.optimizer.zero_grad()
            pred = self.model(Tensor(xb))
            loss = self.loss_fn(pred, Tensor(yb))
            loss.backward()
            self._clip_gradients()
            self.optimizer.step()
            total += loss.item() * len(xb)
            count += len(xb)
        return total / max(count, 1)

    def _epoch_compiled(self, x: np.ndarray, y: np.ndarray) -> float:
        """One epoch through the fused plan — same minibatch order, same
        dropout draws, same losses as the graph epoch, no ``Tensor``
        intermediates and no per-parameter Python optimizer loop."""
        plan, fused = self._plan, self._fused
        total, count = 0.0, 0
        for xb, yb in iterate_minibatches(x, y, self.batch_size, self.rng):
            loss = plan.train_batch(xb, yb)
            if self.grad_clip is not None:
                plan.clip_gradients(self.grad_clip)
            fused.step()
            total += loss * len(xb)
            count += len(xb)
        return total / max(count, 1)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Validation loss through the compiled inference path.

        ``forward_compiled`` falls back to the graph internally for
        unsupported layers, so this is safe for every model; both the
        compiled and graph training paths share this evaluation, which
        keeps their loss histories (and early stopping) identical.
        """
        with no_grad():
            pred = self.model.forward_compiled(x)
            loss = self.loss_fn(Tensor(pred), Tensor(y))
        return loss.item()

    def fit(self, x_train: np.ndarray, y_train: np.ndarray,
            x_val: np.ndarray, y_val: np.ndarray) -> TrainResult:
        self._compile_failed = False      # new data may be compilable
        best = float("inf")
        best_state = None
        stale = 0
        history = []
        epochs = 0
        for epoch in range(self.max_epochs):
            epochs = epoch + 1
            train_loss = self._epoch(x_train, y_train)
            val_loss = self.evaluate(x_val, y_val)
            self._step_scheduler(val_loss)
            history.append({"epoch": epoch, "train": train_loss, "val": val_loss})
            if val_loss < best - 1e-12:
                best = val_loss
                best_state = self.model.state_dict()
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return TrainResult(best_val_loss=best, epochs_run=epochs, history=history)

    def validation_rmse(self, x_val: np.ndarray, y_val: np.ndarray) -> float:
        pred = self.model.forward_compiled(x_val)
        return rmse(pred, y_val)
