"""Training loop utilities: dataset splitting, minibatching, Trainer.

Implements the supervised workflow of §III: the data collected by the
runtime (inputs/outputs pairs) is split into training/validation per the
paper's "best practices" citation, and the BO inner loop trains each
candidate with these utilities.

``Trainer`` runs minibatches through the compiled training fast path
(:mod:`repro.nn.compile_train`) by default: a fused forward/backward
NumPy plan plus a vectorized optimizer, reproducing the graph path's
numerics while skipping its per-intermediate ``Tensor`` allocations.
Models, losses or optimizers without a compiled lowering fall back to
the autodiff graph automatically (``Trainer.compiled_active`` /
``Trainer.compile_fallback`` report which path ran).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .compile import UnsupportedLayerError
from .layers import Module
from .loss import mse_loss, rmse
from .optim import Adam, Optimizer
from .tensor import Tensor, no_grad

__all__ = ["train_val_split", "iterate_minibatches", "Trainer",
           "FleetTrainer", "TrainResult", "normalize_stats",
           "Normalizer"]


def train_val_split(x: np.ndarray, y: np.ndarray, val_fraction: float = 0.2,
                    rng: np.random.Generator | None = None,
                    return_indices: bool = False):
    """Shuffle and split arrays into train/validation partitions.

    With ``return_indices`` the ``(train_idx, val_idx)`` row-index
    arrays are returned instead of the gathered partitions, for
    callers that reweight or resample a partition (e.g. the retrain
    worker's recency bootstrap) without forking the split convention.
    """
    if len(x) != len(y):
        raise ValueError(f"x and y disagree on sample count: {len(x)} vs {len(y)}")
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1): {val_fraction}")
    rng = rng or np.random.default_rng()
    n = len(x)
    perm = rng.permutation(n)
    n_val = max(1, int(round(n * val_fraction)))
    val_idx, train_idx = perm[:n_val], perm[n_val:]
    if return_indices:
        return train_idx, val_idx
    return (x[train_idx], y[train_idx]), (x[val_idx], y[val_idx])


def iterate_minibatches(x: np.ndarray, y: np.ndarray, batch_size: int,
                        rng: np.random.Generator | None = None,
                        shuffle: bool = True):
    """Yield ``(xb, yb)`` minibatches covering the dataset once."""
    n = len(x)
    order = (rng or np.random.default_rng()).permutation(n) if shuffle \
        else np.arange(n)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        yield x[idx], y[idx]


@dataclass
class Normalizer:
    """Feature-wise standardization fitted on training data only."""

    mean: np.ndarray
    std: np.ndarray

    def transform(self, x: np.ndarray) -> np.ndarray:
        return (x - self.mean) / self.std

    def inverse(self, x: np.ndarray) -> np.ndarray:
        return x * self.std + self.mean


def normalize_stats(x: np.ndarray, axis=0, eps: float = 1e-8) -> Normalizer:
    mean = x.mean(axis=axis, keepdims=True)
    std = x.std(axis=axis, keepdims=True)
    std = np.where(std < eps, 1.0, std)
    return Normalizer(mean=mean, std=std)


@dataclass
class TrainResult:
    """Outcome of a training run; ``history`` holds per-epoch val loss."""

    best_val_loss: float
    epochs_run: int
    history: list = field(default_factory=list)


class Trainer:
    """Minibatch trainer with early stopping on validation loss.

    Parameters mirror the Table V hyperparameter space: learning rate,
    weight decay and batch size are the knobs the BO inner loop turns.
    """

    def __init__(self, model: Module, lr: float = 1e-3, weight_decay: float = 0.0,
                 batch_size: int = 64, max_epochs: int = 50, patience: int = 8,
                 loss_fn=mse_loss, optimizer: Optimizer | None = None,
                 seed: int = 0, grad_clip: float | None = None,
                 scheduler=None, compiled: bool = True, warm_start=None):
        self.model = model
        self.batch_size = int(batch_size)
        self.max_epochs = max_epochs
        self.patience = patience
        self.loss_fn = loss_fn
        self.rng = np.random.default_rng(seed)
        self.optimizer = optimizer or Adam(model.parameters(), lr=lr,
                                           weight_decay=weight_decay)
        self.grad_clip = grad_clip
        #: Optional LR scheduler; stepped once per epoch.  Plateau-style
        #: schedulers (taking the validation loss) are detected by
        #: signature.
        self.scheduler = scheduler
        #: Use the compiled training fast path when the model/loss/
        #: optimizer support it; falls back to the graph automatically.
        self.compiled = compiled
        self._plan = None
        self._plan_model = None
        self._fused = None
        #: Fingerprint of the (model, loss) whose compile failed.  The
        #: latch is keyed structurally, not per fit: swapping in a
        #: supported model re-attempts compilation immediately.
        self._failed_fingerprint: str | None = None
        #: Optional fused-optimizer state from a previous Trainer (see
        #: :meth:`optimizer_state`), applied once when the plan whose
        #: fingerprint it names is compiled — warm restarts across
        #: hot-swap retrains.
        self._warm_start = warm_start
        #: True while epochs actually run through the compiled plan.
        self.compiled_active = False
        #: Human-readable reason the last compile attempt fell back.
        self.compile_fallback: str | None = None

    # -- compiled fast path ------------------------------------------------
    def _fingerprint(self) -> str:
        from .compile_train import training_fingerprint
        return training_fingerprint(self.model, self.loss_fn)

    def _ensure_compiled(self, x: np.ndarray, y: np.ndarray) -> bool:
        """(Re)compile the fused training plan if needed; False => graph.

        The plan is cached across epochs and revalidated against
        parameter rebinding (``load_state_dict``) via its staleness
        watch and against model replacement (``trainer.model = other``)
        by identity.  Any unsupported layer, loss, optimizer or dtype
        falls back silently — the graph path is always correct.  When a
        recompile preserves the structural fingerprint, the fused
        optimizer's moments are carried over instead of reset (warm
        restart); a failed compile latches on the fingerprint, so only
        the *same* structure short-circuits future attempts.
        """
        if not self.compiled:
            return False
        if self._plan is not None and self._plan_model is self.model \
                and not self._plan.stale():
            return True
        if self._failed_fingerprint is not None and \
                self._failed_fingerprint == self._fingerprint():
            # Same structure as the failed attempt: don't retry every
            # epoch.  A swapped-in model (different fingerprint) falls
            # through and compiles.
            return False
        old_plan, old_fused = self._plan, self._fused
        self._plan = self._fused = self._plan_model = None
        self.compiled_active = False
        if np.asarray(x).dtype != np.float64 or \
                np.asarray(y).dtype != np.float64:
            self.compile_fallback = "training arrays are not float64"
            self._failed_fingerprint = self._fingerprint()
            return False
        try:
            from .compile_train import compile_training
            plan = compile_training(self.model, self.loss_fn)
            fused = plan.bind_optimizer(self.optimizer)
        except UnsupportedLayerError as exc:
            self.compile_fallback = str(exc)
            self._failed_fingerprint = self._fingerprint()
            return False
        if old_fused is not None and old_plan is not None and \
                type(old_fused) is type(fused) and \
                old_plan.fingerprint == plan.fingerprint:
            # Same structure, recompiled (load_state_dict / hot swap):
            # moments survive instead of resetting to zero.  The
            # fingerprint covers layout, not optimizer hyperparameters
            # (a replaced optimizer may reject the state) — an
            # incompatible carry degrades to a cold start, never a
            # failed fit.
            try:
                fused.load_state_dict(old_fused.state_dict())
            except ValueError:
                pass
        elif self._warm_start is not None and \
                self._warm_start.get("fingerprint") == plan.fingerprint \
                and self._warm_start.get("kind") == type(fused).__name__:
            try:
                fused.load_state_dict(self._warm_start["state"])
            except ValueError:
                pass                       # incompatible state: cold start
            self._warm_start = None
        self._plan, self._fused = plan, fused
        self._plan_model = self.model
        self.compiled_active = True
        self.compile_fallback = None
        self._failed_fingerprint = None
        return True

    def optimizer_state(self) -> dict | None:
        """Portable fused-optimizer state for warm-restarting a future
        Trainer (``Trainer(..., warm_start=state)``).  Tagged with the
        plan fingerprint so it is only ever applied to a same-layout
        plan; ``None`` when training ran on the graph path."""
        if self._fused is None or self._plan is None:
            return None
        return {"fingerprint": self._plan.fingerprint,
                "kind": type(self._fused).__name__,
                "state": self._fused.state_dict()}

    def _clip_gradients(self) -> None:
        if self.grad_clip is None:
            return
        total = 0.0
        params = [p for p in self.optimizer.params if p.grad is not None]
        for p in params:
            total += float(np.vdot(p.grad, p.grad))
        norm = np.sqrt(total)
        if norm > self.grad_clip:
            scale = self.grad_clip / (norm + 1e-12)
            for p in params:
                p.grad *= scale

    def _step_scheduler(self, val_loss: float) -> None:
        if self.scheduler is None:
            return
        try:
            self.scheduler.step(val_loss)
        except TypeError:
            self.scheduler.step()

    def _epoch(self, x: np.ndarray, y: np.ndarray) -> float:
        self.model.train()
        if self._ensure_compiled(x, y):
            # Snapshot the shuffle RNG and every layer RNG (Dropout) so
            # an aborted compiled attempt can be replayed on the graph
            # path with the exact same draws — the fixed-seed
            # compiled/graph equivalence contract survives the retry.
            snaps = [(self.rng, self.rng.bit_generator.state)]
            for m in self.model.modules():
                r = getattr(m, "rng", None)
                if isinstance(r, np.random.Generator):
                    snaps.append((r, r.bit_generator.state))
            try:
                return self._epoch_compiled(x, y)
            except UnsupportedLayerError as exc:
                # Shape-dependent rejection (e.g. 3-D activations into
                # an affine step) only surfaces at run time; latch and
                # fall back to the graph for this data.
                self.compile_fallback = str(exc)
                self._failed_fingerprint = self._fingerprint()
                self._plan = self._fused = self._plan_model = None
                self.compiled_active = False
                for r, state in snaps:
                    r.bit_generator.state = state
        total, count = 0.0, 0
        for xb, yb in iterate_minibatches(x, y, self.batch_size, self.rng):
            self.optimizer.zero_grad()
            pred = self.model(Tensor(xb))
            loss = self.loss_fn(pred, Tensor(yb))
            loss.backward()
            self._clip_gradients()
            self.optimizer.step()
            total += loss.item() * len(xb)
            count += len(xb)
        return total / max(count, 1)

    def _epoch_compiled(self, x: np.ndarray, y: np.ndarray) -> float:
        """One epoch through the fused plan — same minibatch order, same
        dropout draws, same losses as the graph epoch, no ``Tensor``
        intermediates and no per-parameter Python optimizer loop."""
        plan, fused = self._plan, self._fused
        total, count = 0.0, 0
        for xb, yb in iterate_minibatches(x, y, self.batch_size, self.rng):
            loss = plan.train_batch(xb, yb)
            if self.grad_clip is not None:
                plan.clip_gradients(self.grad_clip)
            fused.step()
            total += loss * len(xb)
            count += len(xb)
        return total / max(count, 1)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Validation loss through the compiled inference path.

        ``forward_compiled`` falls back to the graph internally for
        unsupported layers, so this is safe for every model; both the
        compiled and graph training paths share this evaluation, which
        keeps their loss histories (and early stopping) identical.
        """
        with no_grad():
            pred = self.model.forward_compiled(x)
            loss = self.loss_fn(Tensor(pred), Tensor(y))
        return loss.item()

    def fit(self, x_train: np.ndarray, y_train: np.ndarray,
            x_val: np.ndarray, y_val: np.ndarray) -> TrainResult:
        # A replaced model with the original optimizer would compute
        # gradients on the new parameters while stepping the old ones —
        # a silent no-op fit on either path.  Fail loudly instead.
        model_ids = {id(p) for p in self.model.parameters()}
        if not all(id(p) in model_ids for p in self.optimizer.params):
            raise ValueError(
                "optimizer does not reference this trainer's model "
                "parameters; replace trainer.optimizer when replacing "
                "trainer.model")
        self._failed_fingerprint = None   # new data may be compilable
        best = float("inf")
        best_state = None
        stale = 0
        history = []
        epochs = 0
        for epoch in range(self.max_epochs):
            epochs = epoch + 1
            train_loss = self._epoch(x_train, y_train)
            val_loss = self.evaluate(x_val, y_val)
            self._step_scheduler(val_loss)
            history.append({"epoch": epoch, "train": train_loss, "val": val_loss})
            if val_loss < best - 1e-12:
                best = val_loss
                best_state = self.model.state_dict()
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return TrainResult(best_val_loss=best, epochs_run=epochs, history=history)

    def validation_rmse(self, x_val: np.ndarray, y_val: np.ndarray) -> float:
        pred = self.model.forward_compiled(x_val)
        return rmse(pred, y_val)


class FleetTrainer:
    """Train K same-fingerprint models in lockstep through one fleet plan.

    The fleet analogue of ``Trainer(compiled=True)``: one batched
    forward/backward advances every still-active member per minibatch,
    with per-member learning rate / weight decay riding as optimizer
    columns.  Each member's loss history, early-stopping epoch and
    final parameters are **bitwise** what its own sequential
    ``Trainer(model, lr=lr_k, ..., seed=seed)`` would produce — the
    shared shuffle RNG draws the same permutation sequence every
    same-seed sequential trainer would, per-member dropout masks come
    from each member's own layer RNG streams, and early-stopped members
    are compacted out of the batched kernels
    (:meth:`~repro.nn.compile_train.FleetTrainingPlan.deactivate`), so
    a finished candidate costs nothing, exactly like the sequential
    trainer that stopped.

    Raises :class:`UnsupportedLayerError` from the constructor for
    structures or losses without a fleet lowering — callers fall back
    to per-model sequential training.
    """

    def __init__(self, models, lr=1e-3, weight_decay=0.0,
                 batch_size: int = 64, max_epochs: int = 50,
                 patience: int = 8, loss_fn=mse_loss,
                 optimizer: str = "adam", momentum: float = 0.0,
                 seed: int = 0, grad_clip: float | None = None):
        from .compile_train import compile_fleet_training
        from .optim import FleetAdam, FleetSGD
        self.models = list(models)
        self.batch_size = int(batch_size)
        self.max_epochs = max_epochs
        self.patience = patience
        self.loss_fn = loss_fn
        self.grad_clip = grad_clip
        self.rng = np.random.default_rng(seed)
        self.plan = compile_fleet_training(self.models, loss_fn)
        if optimizer == "adam":
            self.optimizer = FleetAdam(self.plan, lr=lr,
                                       weight_decay=weight_decay)
        elif optimizer == "sgd":
            self.optimizer = FleetSGD(self.plan, lr=lr, momentum=momentum,
                                      weight_decay=weight_decay)
        else:
            raise ValueError(f"unknown fleet optimizer {optimizer!r}")
        self.plan.bind_optimizer(self.optimizer)

    @property
    def k(self) -> int:
        return self.plan.k

    def _evaluate_stacked(self, x_val, y_val) -> np.ndarray:
        """Per-member validation losses (member order), via the stacked
        evaluation forward + the graph loss — bitwise the sequential
        ``Trainer.evaluate``."""
        pred = self.plan.eval_forward(x_val)
        out = np.full(self.k, np.nan)
        yt = Tensor(y_val)
        for row in range(self.plan.n_active):
            member = self.plan.member_at[row]
            with no_grad():
                out[member] = self.loss_fn(Tensor(pred[row]), yt).item()
        return out

    def fit(self, x_train, y_train, x_val, y_val) -> list:
        """Train every member; returns ``TrainResult`` per member, in
        the order the models were given."""
        plan, opt = self.plan, self.optimizer
        k = plan.k
        best = [float("inf")] * k
        best_snap = [None] * k
        stale = [0] * k
        history = [[] for _ in range(k)]
        epochs = [0] * k
        x_train = np.asarray(x_train)
        y_train = np.asarray(y_train)
        for m in self.models:
            m.train()
        for epoch in range(self.max_epochs):
            if plan.n_active == 0:
                break
            total = np.zeros(k)
            count = 0
            for xb, yb in iterate_minibatches(x_train, y_train,
                                              self.batch_size, self.rng):
                vals = plan.train_batch(xb, yb)
                if self.grad_clip is not None:
                    plan.clip_gradients(self.grad_clip)
                opt.step()
                for row in range(plan.n_active):
                    total[plan.member_at[row]] += vals[row] * len(xb)
                count += len(xb)
            val_losses = self._evaluate_stacked(x_val, y_val)
            retiring = []
            for row in range(plan.n_active):
                member = plan.member_at[row]
                epochs[member] = epoch + 1
                train_loss = total[member] / max(count, 1)
                val_loss = float(val_losses[member])
                history[member].append({"epoch": epoch,
                                        "train": train_loss,
                                        "val": val_loss})
                if val_loss < best[member] - 1e-12:
                    best[member] = val_loss
                    best_snap[member] = plan.snapshot_member(member)
                    stale[member] = 0
                else:
                    stale[member] += 1
                    if stale[member] >= self.patience:
                        retiring.append(member)
            for member in retiring:
                plan.deactivate(member)
        for member in range(k):
            if best_snap[member] is not None:
                plan.restore_member(member, best_snap[member])
        plan.sync_members()
        for m in self.models:
            m.eval()
        return [TrainResult(best_val_loss=best[m], epochs_run=epochs[m],
                            history=history[m]) for m in range(k)]
