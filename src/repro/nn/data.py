"""Dataset/DataLoader over collection databases (§IV-B fidelity).

The paper stores collected data so it is "directly readable by the
built-in PyTorch data loaders"; this module is that reader for our
stack: :class:`H5Dataset` wraps a region group inside a ``repro.h5``
database, and :class:`DataLoader` iterates shuffled minibatches over
any (x, y) dataset, exactly like its Torch namesake.
"""

from __future__ import annotations

import numpy as np

from ..h5 import File

__all__ = ["ArrayDataset", "H5Dataset", "DataLoader"]


class ArrayDataset:
    """In-memory (inputs, outputs) pair dataset."""

    def __init__(self, x: np.ndarray, y: np.ndarray):
        if len(x) != len(y):
            raise ValueError(f"x and y disagree on length: {len(x)} vs "
                             f"{len(y)}")
        self.x = np.asarray(x)
        self.y = np.asarray(y)

    def __len__(self) -> int:
        return len(self.x)

    def __getitem__(self, idx):
        return self.x[idx], self.y[idx]


class H5Dataset(ArrayDataset):
    """A region's collected data, loaded from a ``repro.h5`` database.

    Exposes the ``region_time`` dataset too, so performance-accuracy
    trade-offs can be assessed "without executing the application"
    (§IV-B).
    """

    def __init__(self, db_path, region: str):
        with File(db_path, "r") as fh:
            group = fh[region]
            x = group["inputs"].read().copy()
            y = group["outputs"].read().copy()
            self.region_time = group["region_time"].read().copy()
            self.attrs = dict(group.attrs)
        super().__init__(x, y)
        self.region = region

    @property
    def mean_region_seconds(self) -> float:
        return float(self.region_time.mean()) if len(self.region_time) \
            else 0.0


class DataLoader:
    """Minibatch iterator with optional shuffling and tail dropping."""

    def __init__(self, dataset, batch_size: int = 64, shuffle: bool = True,
                 drop_last: bool = False, seed: int | None = None):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive: {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self):
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last \
            else n
        for start in range(0, stop, self.batch_size):
            idx = order[start:start + self.batch_size]
            yield self.dataset[idx]
