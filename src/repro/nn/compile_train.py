"""Compiled training fast path: fused forward/backward plans + fused optimizer.

PR 1 compiled *inference*; this module compiles *training*, the
remaining hot path: every ``Trainer._epoch`` minibatch on the graph
path allocates dozens of autodiff ``Tensor`` intermediates, and
``Adam.step`` loops over parameters in Python.  Since the online
serving layer retrains in-process (``serving.retrain.RetrainWorker``)
and the BO hyperparameter search trains every candidate, epoch time
bounds both drift-recovery latency and search throughput.

:func:`compile_training` lowers a model **once** through the shared
plan IR (:mod:`repro.nn.plan`) — the same per-layer registry the
inference compiler uses, in training mode — and emits a
:class:`CompiledTrainingPlan`:

* **fused forward** — affine/conv/recurrent steps over raw ndarrays
  into preallocated per-batch-size scratch, stashing only the
  activations the backward pass needs (zero ``Tensor`` wrappers);
* **hand-derived backward** — per-step adjoints that replay the exact
  op sequence of the autodiff graph (same formulas, same association
  where it matters) and write parameter gradients straight into
  per-parameter views of one flat, preallocated gradient buffer;
* **fused optimizer** — :class:`FusedAdam` / :class:`FusedSGD` run the
  moment updates vectorized over the flat gradient/moment buffers
  (decoupled weight decay, in-place parameter updates) instead of a
  Python loop of temporaries per parameter.  Both expose
  ``state_dict()`` / ``load_state_dict()`` over the flat moment
  buffers, and plans carry a structural fingerprint — together these
  let moments survive a same-structure recompile (warm restarts across
  ``load_state_dict``, hot-swap retrains, repeated ``fit()`` calls);
* **in-place global-norm clipping** — :meth:`CompiledTrainingPlan.
  clip_gradients` accumulates per-parameter ``np.vdot`` and rescales
  the flat buffer in place.

Supported layer set is the deployed-surrogate zoo: ``Linear``,
ReLU/Tanh/Sigmoid/LeakyReLU, ``Dropout`` (train-mode masks drawn from
the layer RNG stream, so compiled and graph training consume identical
draws), ``BatchNorm1d`` (train mode, running stats), ``Conv1d``/
``Conv2d`` (im2col + GEMM with the ``col2im`` adjoint), ``GRU``
(full-window BPTT; final-state and sequence outputs),
``MaxPool2d``, ``CropPad2d``, ``Standardize``/``Destandardize``,
``Flatten``, ``Identity``, and ``Sequential`` nesting — every Table IV
surrogate family trains on the fast path.  Anything else (custom
modules, custom losses/optimizers, non-float64 data) raises
:class:`UnsupportedLayerError` and callers fall back to the graph path
— :class:`~repro.nn.Trainer` does this automatically.

Numerical contract: with float64 data and fixed seeds the compiled
path reproduces the graph path's losses, gradients and parameter
trajectories to within a few ULP (element-wise ops are mirrored
exactly; the only divergence source is BLAS accumulation order inside
the weight-gradient GEMMs).  ``tests/test_nn_compile_train.py`` and
``tests/test_nn_plan.py`` pin gradient parity at <= 1e-10 and
identical early-stopping behavior.
"""

from __future__ import annotations

import functools

import numpy as np

from . import layers as L
from .loss import huber_loss, l1_loss, mape_loss, mse_loss
from .optim import SGD, Adam
from .plan import (PlanStep, UnsupportedLayerError, _buf,
                   fleet_fingerprint, loss_token, lower_fleet,
                   lower_model, structural_fingerprint)

__all__ = ["compile_training", "CompiledTrainingPlan", "FusedAdam",
           "FusedSGD", "compile_fleet_training", "FleetTrainingPlan",
           "fleet_training_fingerprint", "UnsupportedLayerError"]


# ----------------------------------------------------------------------
# Loss lowering
# ----------------------------------------------------------------------

class _CompiledLoss(PlanStep):
    """Loss value + seed gradient, mirroring the graph op sequence."""

    __slots__ = ("kind", "delta", "eps")

    def __init__(self, kind, delta=1.0, eps=1e-8):
        super().__init__(True)
        self.kind = kind
        self.delta = delta
        self.eps = eps

    def run(self, pred, target, n):
        if pred.shape != target.shape:
            raise ValueError(f"loss shape mismatch: {pred.shape} vs "
                             f"{target.shape}")
        s = self.scratch(n)
        d = _buf(s, "d", pred.shape)
        np.subtract(pred, target, out=d)
        inv = 1.0 / d.size
        g = _buf(s, "g", pred.shape)
        t = _buf(s, "t", pred.shape)
        kind = self.kind
        if kind == "mse":
            np.multiply(d, d, out=t)
            val = float(t.sum() * inv)
            # Graph: two (1/N)*diff accumulations — exact doubling.
            np.multiply(d, inv, out=g)
            np.add(g, g, out=g)
            return val, g
        if kind == "l1":
            np.abs(d, out=t)
            val = float(t.sum() * inv)
            np.sign(d, out=g)
            np.multiply(g, inv, out=g)
            return val, g
        if kind == "mape":
            denom = np.maximum(np.abs(target), self.eps)
            np.abs(d, out=t)
            np.divide(t, denom, out=t)
            val = float(t.sum() * inv)
            np.sign(d, out=g)
            np.multiply(g, inv, out=g)
            np.divide(g, denom, out=g)
            return val, g
        # huber: a = |d|; quad = clip(a, 0, delta); lin = a - quad;
        # loss = (quad*quad*0.5 + lin*delta).mean()
        delta = self.delta
        a = np.abs(d)
        quad = np.clip(a, 0.0, delta)
        lin = a - quad
        val = float((quad * quad * 0.5 + lin * delta).sum() * inv)
        gq = quad * (inv * 0.5)
        gq += gq
        gq -= inv * delta
        mask = (a >= 0.0) & (a <= delta)
        ga = inv * delta + gq * mask
        np.sign(d, out=g)
        np.multiply(g, ga, out=g)
        return val, g


def _resolve_loss(loss_fn) -> _CompiledLoss:
    base, kwargs = loss_fn, {}
    if isinstance(loss_fn, functools.partial):
        if loss_fn.args:
            raise UnsupportedLayerError(
                "compiled training supports keyword-only loss partials")
        base, kwargs = loss_fn.func, dict(loss_fn.keywords or {})
    if base is mse_loss and not kwargs:
        return _CompiledLoss("mse")
    if base is l1_loss and not kwargs:
        return _CompiledLoss("l1")
    if base is huber_loss and set(kwargs) <= {"delta"}:
        return _CompiledLoss("huber", delta=kwargs.get("delta", 1.0))
    if base is mape_loss and set(kwargs) <= {"eps"}:
        return _CompiledLoss("mape", eps=kwargs.get("eps", 1e-8))
    name = getattr(base, "__name__", repr(base))
    raise UnsupportedLayerError(f"no compiled training lowering for loss "
                                f"{name!r}")


# ----------------------------------------------------------------------
# Fused optimizers over flat gradient/moment buffers
# ----------------------------------------------------------------------

class FusedAdam:
    """Vectorized Adam/AdamW step over a plan's flat gradient buffer.

    Reads hyperparameters (``lr``, betas, ``eps``, ``weight_decay``)
    from the source :class:`~repro.nn.optim.Adam` on every step, so LR
    schedulers mutating ``optimizer.lr`` keep working.  Moment buffers
    are flat; the per-parameter tail applies decoupled weight decay and
    the in-place ``p -= lr * update`` (which, unlike the graph
    optimizer's rebinding update, lets compiled inference plans keep
    watching the same arrays).  ``state_dict`` / ``load_state_dict``
    move the flat moments between same-layout plans (equal structural
    fingerprints), which is how warm restarts survive a recompile.
    """

    __slots__ = ("plan", "src", "m", "v", "_u", "_s", "t", "_segs")

    def __init__(self, plan, src):
        n = plan.n_flat
        self.plan = plan
        self.src = src
        self.m = np.zeros(n)
        self.v = np.zeros(n)
        self._u = np.empty(n)
        self._s = np.empty(n)
        self.t = int(src._t)
        self._segs = [
            (p.data.reshape(-1), self._u[lo:hi], plan.grads[lo:hi])
            for p, (lo, hi) in zip(plan.params, plan.offsets)]

    def state_dict(self) -> dict:
        """Flat moment state, copy-safe for carrying across recompiles."""
        return {"t": self.t, "m": self.m.copy(), "v": self.v.copy()}

    def load_state_dict(self, state: dict) -> None:
        m = np.asarray(state["m"], dtype=np.float64)
        v = np.asarray(state["v"], dtype=np.float64)
        if m.shape != self.m.shape or v.shape != self.v.shape:
            raise ValueError(
                f"moment shape mismatch: got {m.shape}/{v.shape}, plan "
                f"has {self.m.shape} flat parameters")
        self.m[...] = m
        self.v[...] = v
        self.t = int(state["t"])

    def step(self) -> None:
        src = self.src
        lr, wd = src.lr, src.weight_decay
        b1, b2, eps = src.beta1, src.beta2, src.eps
        self.t += 1
        bias1 = 1.0 - b1 ** self.t
        bias2 = 1.0 - b2 ** self.t
        G, M, V, U, S = self.plan.grads, self.m, self.v, self._u, self._s
        M *= b1
        np.multiply(G, 1.0 - b1, out=U)
        M += U
        V *= b2
        np.multiply(G, G, out=S)
        S *= 1.0 - b2
        V += S
        np.divide(M, bias1, out=U)
        np.divide(V, bias2, out=S)
        np.sqrt(S, out=S)
        S += eps
        U /= S
        # Per-parameter tail: decoupled decay + in-place update.  The
        # gradient segment doubles as scratch (it is rewritten by the
        # next backward pass anyway).  Without decay the lr scale runs
        # once over the flat buffer instead of per segment.
        if wd:
            for pflat, useg, gseg in self._segs:
                np.multiply(pflat, wd, out=gseg)
                useg += gseg
                np.multiply(useg, lr, out=gseg)
                np.subtract(pflat, gseg, out=pflat)
        else:
            U *= lr
            for pflat, useg, _gseg in self._segs:
                np.subtract(pflat, useg, out=pflat)


class FusedSGD:
    """Vectorized SGD (momentum, L2 decay) over the flat gradient buffer."""

    __slots__ = ("plan", "src", "vel", "_s", "_segs")

    def __init__(self, plan, src):
        n = plan.n_flat
        self.plan = plan
        self.src = src
        self.vel = np.zeros(n) if src.momentum else None
        self._s = np.empty(n)
        self._segs = [
            (p.data.reshape(-1), self._s[lo:hi], plan.grads[lo:hi])
            for p, (lo, hi) in zip(plan.params, plan.offsets)]

    def state_dict(self) -> dict:
        return {"vel": None if self.vel is None else self.vel.copy()}

    def load_state_dict(self, state: dict) -> None:
        vel = state.get("vel")
        if vel is None:
            return                       # momentum-less: nothing to carry
        if self.vel is None:
            raise ValueError("velocity state given but momentum is 0")
        vel = np.asarray(vel, dtype=np.float64)
        if vel.shape != self.vel.shape:
            raise ValueError(f"velocity shape mismatch: {vel.shape} vs "
                             f"{self.vel.shape}")
        self.vel[...] = vel

    def step(self) -> None:
        src = self.src
        lr, mom, wd = src.lr, src.momentum, src.weight_decay
        G = self.plan.grads
        if wd:
            for pflat, sseg, gseg in self._segs:
                np.multiply(pflat, wd, out=sseg)
                gseg += sseg
        if mom:
            V = self.vel
            V *= mom
            V += G
            upd = V
        else:
            upd = G
        S = self._s
        np.multiply(upd, lr, out=S)
        for pflat, sseg, _gseg in self._segs:
            np.subtract(pflat, sseg, out=pflat)


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------

class CompiledTrainingPlan:
    """A fused forward/backward training closure over raw ndarrays.

    ``train_batch(x, y)`` runs one minibatch — forward with train-mode
    semantics, loss, and backward — leaving parameter gradients in
    per-parameter views of the flat :attr:`grads` buffer, and returns
    the scalar loss.  Pair with :meth:`bind_optimizer` for the fused
    update and :meth:`clip_gradients` for global-norm clipping.
    """

    __slots__ = ("_steps", "_loss", "params", "offsets", "n_flat", "grads",
                 "grad_views", "_watch", "_struct_watch", "summary",
                 "n_layers", "n_fused", "_keys", "_need_gx", "fingerprint")

    def __init__(self, steps, loss_plan, watch, struct_watch, summary,
                 n_layers, n_fused, fingerprint):
        self._steps = tuple(steps)
        self._loss = loss_plan
        params = []
        for step in self._steps:
            params.extend(step.grad_params)
        self.params = tuple(params)
        sizes = [p.data.size for p in self.params]
        bounds = np.concatenate(([0], np.cumsum(sizes))).astype(int)
        self.offsets = tuple((int(bounds[i]), int(bounds[i + 1]))
                             for i in range(len(sizes)))
        self.n_flat = int(bounds[-1])
        self.grads = np.zeros(self.n_flat)
        self.grad_views = tuple(
            self.grads[lo:hi].reshape(p.data.shape)
            for p, (lo, hi) in zip(self.params, self.offsets))
        self._watch = tuple(watch)
        self._struct_watch = tuple(struct_watch)
        self.summary = tuple(summary)
        self.n_layers = n_layers
        self.n_fused = n_fused
        self._keys: set = set()
        #: Structural digest of the lowered (model, loss) pair.  Equal
        #: fingerprints => identical flat-buffer layout, so fused
        #: optimizer moments may be carried across a recompile.
        self.fingerprint = fingerprint
        # Late-bind gradient views into the steps (built before the
        # flat buffer exists).
        cursor = 0
        for step in self._steps:
            k = len(step.grad_params)
            if k:
                step.bind_grads(self.grad_views[cursor:cursor + k])
                cursor += k
        # A step only needs an input gradient if some *earlier* step
        # holds parameters — skips the input-gradient GEMM of the first
        # parameterized step and the backward sweeps of leading
        # Standardize/Flatten steps (those gradients were discarded
        # anyway).
        need = []
        seen_params = False
        for step in self._steps:
            need.append(seen_params)
            if step.grad_params:
                seen_params = True
        self._need_gx = tuple(need)

    def stale(self) -> bool:
        """True when the plan no longer describes the model.

        Trips on parameter-array rebinding (``load_state_dict``) and on
        structural ``Sequential`` mutation; the fused optimizer's
        in-place updates do **not** flip staleness.
        """
        for obj, name, arr in self._watch:
            if getattr(obj, name) is not arr:
                return True
        for ref, layer_list, n_layers in self._struct_watch:
            seq = ref()
            if seq is None or seq.layers is not layer_list or \
                    len(layer_list) != n_layers:
                return True
        return False

    def bind_optimizer(self, opt):
        """Build the fused optimizer mirroring ``opt``'s hyperparameters.

        Raises :class:`UnsupportedLayerError` for optimizers without a
        fused lowering (custom subclasses, pre-stepped moment state, or
        a parameter set that differs from the plan's).
        """
        plan_ids = {id(p) for p in self.params}
        opt_ids = {id(p) for p in opt.params}
        if plan_ids != opt_ids:
            raise UnsupportedLayerError(
                "optimizer parameter set differs from the compiled plan's")
        if type(opt) is Adam:
            if any(m.any() for m in opt._m):
                raise UnsupportedLayerError(
                    "Adam has pre-stepped moment state; compiled training "
                    "requires a fresh optimizer")
            return FusedAdam(self, opt)
        if type(opt) is SGD:
            if opt.momentum and any(v.any() for v in opt._velocity):
                raise UnsupportedLayerError(
                    "SGD has pre-stepped velocity state; compiled training "
                    "requires a fresh optimizer")
            return FusedSGD(self, opt)
        raise UnsupportedLayerError(
            f"no fused lowering for optimizer {type(opt).__name__}")

    def train_batch(self, x, y) -> float:
        """One fused forward/backward minibatch; returns the loss."""
        x = np.asarray(x)
        y = np.asarray(y)
        if x.dtype != np.float64 or y.dtype != np.float64:
            raise TypeError("compiled training requires float64 arrays")
        n = x.shape[0]
        if n not in self._keys:
            if len(self._keys) > 16:
                for step in self._steps:
                    step.clear()
                self._loss.clear()
                self._keys.clear()
            self._keys.add(n)
        h = x
        for step in self._steps:
            h = step.forward(h, n)
        loss, g = self._loss.run(h, y, n)
        steps = self._steps
        need_gx = self._need_gx
        for i in range(len(steps) - 1, -1, -1):
            g = steps[i].backward(g, n, need_gx[i])
            if g is None:
                break
        return loss

    def clip_gradients(self, max_norm: float) -> float:
        """Global-norm clip, in place on the flat gradient buffer."""
        total = 0.0
        for view in self.grad_views:
            total += float(np.vdot(view, view))
        norm = float(np.sqrt(total))
        if norm > max_norm:
            self.grads *= max_norm / (norm + 1e-12)
        return norm

    def __repr__(self):
        return (f"CompiledTrainingPlan(layers={self.n_layers}, "
                f"steps={len(self._steps)}, fused={self.n_fused}, "
                f"params={len(self.params)})")


def training_fingerprint(model: L.Module, loss_fn=mse_loss) -> str:
    """Structural fingerprint of a (model, loss) training plan — what
    :attr:`CompiledTrainingPlan.fingerprint` will be if compiled.  Cheap
    (no array math), so callers key caches/latches on it without
    lowering first."""
    return structural_fingerprint(model,
                                  extra=("train", loss_token(loss_fn)))


def compile_training(model: L.Module, loss_fn=mse_loss) -> CompiledTrainingPlan:
    """Compile ``model`` + ``loss_fn`` into a fused training plan.

    Raises :class:`UnsupportedLayerError` for layers, losses or
    optimizers without a training lowering — callers fall back to the
    autodiff graph path (``Trainer`` does so automatically).
    """
    loss_plan = _resolve_loss(loss_fn)
    ctx, struct_watch, n_layers = lower_model(model, training=True)
    if not any(step.grad_params for step in ctx.steps):
        raise UnsupportedLayerError("model has no trainable parameters")
    return CompiledTrainingPlan(ctx.steps, loss_plan, ctx.watch,
                                struct_watch, ctx.summary, n_layers,
                                ctx.n_fused,
                                training_fingerprint(model, loss_fn))


# ----------------------------------------------------------------------
# Fleet training: K same-fingerprint candidates in lockstep
# ----------------------------------------------------------------------

class _FleetLoss:
    """Per-member loss values + stacked seed gradient.

    Wraps one :class:`_CompiledLoss` and runs it member by member —
    the loss is a cheap elementwise tail next to the batched GEMMs, and
    looping guarantees member ``k``'s value/gradient are bitwise what
    its own sequential plan computes (shared reductions would change
    the ``1/N`` scale).
    """

    __slots__ = ("single", "_bufs")

    def __init__(self, single: _CompiledLoss):
        self.single = single
        self._bufs: dict = {}

    def run(self, pred, target, n):
        na = pred.shape[0]
        bufs = self._bufs.setdefault(n, {})
        g = bufs.get("g")
        if g is None or g.shape != pred.shape:
            g = bufs["g"] = np.empty(pred.shape)
            bufs["d"] = np.empty(pred.shape)
            bufs["t"] = np.empty(pred.shape)
        if self.single.kind == "mse":
            # Batched fast path: every op is elementwise (or a
            # per-member reduce with the sequential association), so
            # member rows stay bitwise — no Python loop over K.
            d, t = bufs["d"], bufs["t"]
            np.subtract(pred, target, out=d)
            inv = 1.0 / pred[0].size
            np.multiply(d, d, out=t)
            vals = t.reshape(na, -1).sum(axis=1) * inv
            np.multiply(d, inv, out=g)
            np.add(g, g, out=g)
            return vals, g
        vals = np.empty(na)
        for i in range(na):
            vals[i], gi = self.single.run(pred[i], target, n)
            np.copyto(g[i], gi)
        return vals, g[:na]

    def clear(self):
        self.single.clear()
        self._bufs.clear()


class FleetTrainingPlan:
    """Fused forward/backward over K stacked same-fingerprint models.

    ``train_batch(x, y)`` advances every *active* member one minibatch
    — one batched forward, per-member losses, one batched backward —
    leaving gradients in the ``(K, n_flat)`` :attr:`grads` slab rows.
    Early-stopped members are compacted out via :meth:`deactivate`
    (their slab rows swap to the tail and every kernel shrinks to the
    active prefix), so finished candidates stop contributing compute.
    Member ``k``'s loss/gradient/parameter trajectory is bitwise the
    one its own sequential :class:`CompiledTrainingPlan` would produce.
    """

    __slots__ = ("k", "n_active", "n_flat", "pslab", "cslab", "grads",
                 "_steps", "_loss", "_psegs", "_csegs", "summary",
                 "n_layers", "n_fused", "fingerprint", "_keys",
                 "_need_gx", "row_of", "member_at", "_opt")

    def __init__(self, models, loss_fn=mse_loss):
        single_loss = _resolve_loss(loss_fn)
        ctx, _struct, n_layers = lower_fleet(models, training=True)
        if not any(step.param_sources() for step in ctx.steps):
            raise UnsupportedLayerError("models have no trainable "
                                        "parameters")
        self.k = ctx.k
        self.n_active = ctx.k
        self._steps = tuple(ctx.steps)
        self._loss = _FleetLoss(single_loss)
        self.summary = tuple(ctx.summary)
        self.n_layers = n_layers
        self.n_fused = ctx.n_fused
        self.fingerprint = fleet_training_fingerprint(models[0], loss_fn)
        self._keys = set()
        self.row_of = list(range(self.k))
        self.member_at = list(range(self.k))
        self._opt = None
        psegs, csegs = [], []
        po = co = 0
        for step in self._steps:
            for si, src in enumerate(step.param_sources()):
                arr0 = getattr(*src[0])
                if arr0.dtype != np.float64:
                    raise UnsupportedLayerError(
                        "fleet training requires float64 parameters")
                psegs.append((step, si, po, po + arr0.size, arr0.shape))
                po += arr0.size
            for si, src in enumerate(step.const_sources()):
                arr0 = getattr(*src[0])
                csegs.append((step, si, co, co + arr0.size, arr0.shape))
                co += arr0.size
        self._psegs = tuple(psegs)
        self._csegs = tuple(csegs)
        self.n_flat = po
        self.pslab = np.empty((self.k, po))
        self.cslab = np.empty((self.k, max(co, 1)))
        self.grads = np.zeros((self.k, po))
        for (step, si, lo, hi, shape) in psegs:
            srcs = step.param_sources()[si]
            for m in range(self.k):
                self.pslab[m, lo:hi] = getattr(*srcs[m]).reshape(-1)
        for (step, si, lo, hi, shape) in csegs:
            srcs = step.const_sources()[si]
            for m in range(self.k):
                self.cslab[m, lo:hi] = \
                    np.asarray(getattr(*srcs[m]),
                               dtype=np.float64).reshape(-1)
        for step in self._steps:
            pviews = [self.pslab[:, lo:hi].reshape((self.k,) + shape)
                      for (s2, _si, lo, hi, shape) in psegs if s2 is step]
            cviews = [self.cslab[:, lo:hi].reshape((self.k,) + shape)
                      for (s2, _si, lo, hi, shape) in csegs if s2 is step]
            if pviews:
                step.bind_params(pviews)
                step.bind_grads(
                    [self.grads[:, lo:hi].reshape((self.k,) + shape)
                     for (s2, _si, lo, hi, shape) in psegs if s2 is step])
            if cviews:
                step.bind_consts(cviews)
        for step in self._steps:
            step.slab_updated()
        need, seen = [], False
        for step in self._steps:
            need.append(seen)
            if step.param_sources():
                seen = True
        self._need_gx = tuple(need)

    # -- optimizer / member management ------------------------------------
    def bind_optimizer(self, opt) -> None:
        """Register the fleet optimizer so member compaction swaps its
        per-member state rows alongside the slab rows."""
        self._opt = opt

    def deactivate(self, member: int) -> None:
        """Retire ``member`` (early stop): swap its slab/optimizer rows
        to the tail and shrink every kernel's active prefix."""
        row = self.row_of[member]
        last = self.n_active - 1
        if row > last:
            raise ValueError(f"member {member} is already inactive")
        if row != last:
            other = self.member_at[last]
            for slab in (self.pslab, self.grads, self.cslab):
                slab[[row, last]] = slab[[last, row]]
            for step in self._steps:
                step.swap_members(row, last)
                step.slab_updated()
            if self._opt is not None:
                self._opt.swap_rows(row, last)
            self.row_of[member], self.row_of[other] = last, row
            self.member_at[row], self.member_at[last] = other, member
        self.n_active -= 1
        for step in self._steps:
            step.n_active = self.n_active

    def snapshot_member(self, member: int) -> dict:
        """Best-epoch capture of one member: parameter row + step-owned
        state (BatchNorm running stats) — the fleet analogue of the
        sequential trainer's ``state_dict`` snapshot."""
        row = self.row_of[member]
        return {"params": self.pslab[row].copy(),
                "steps": [step.snapshot_row(row) for step in self._steps]}

    def restore_member(self, member: int, snap: dict) -> None:
        row = self.row_of[member]
        self.pslab[row] = snap["params"]
        for step, s in zip(self._steps, snap["steps"]):
            step.restore_row(row, s)

    def sync_members(self) -> None:
        """Copy slab rows back into the member models' live parameter
        arrays (and running stats) — call once after training."""
        for (step, si, lo, hi, shape) in self._psegs:
            srcs = step.param_sources()[si]   # row order after swaps
            for row in range(self.k):
                holder, attr = srcs[row]
                getattr(holder, attr)[...] = \
                    self.pslab[row, lo:hi].reshape(shape)
        for step in self._steps:
            step.sync_members()

    # -- execution ---------------------------------------------------------
    def train_batch(self, x, y) -> np.ndarray:
        """One fused minibatch for every active member; returns the
        ``(n_active,)`` per-member losses in *row* order (map to member
        order via :attr:`member_at`)."""
        x = np.asarray(x)
        y = np.asarray(y)
        if x.dtype != np.float64 or y.dtype != np.float64:
            raise TypeError("fleet training requires float64 arrays")
        n = x.shape[-2]
        if n not in self._keys:
            if len(self._keys) > 16:
                for step in self._steps:
                    step.clear()
                self._loss.clear()
                self._keys.clear()
            self._keys.add(n)
        h = x
        for step in self._steps:
            h = step.forward(h, n)
        vals, g = self._loss.run(h, y, n)
        steps = self._steps
        need_gx = self._need_gx
        for i in range(len(steps) - 1, -1, -1):
            g = steps[i].backward(g, n, need_gx[i])
            if g is None:
                break
        return vals

    def eval_forward(self, x) -> np.ndarray:
        """Stacked evaluation-mode forward (dropout off, BatchNorm on
        running stats) — row ``r`` is bitwise member ``member_at[r]``'s
        compiled inference forward."""
        x = np.asarray(x)
        if x.dtype != np.float64:
            x = x.astype(np.float64)
        n = x.shape[-2]
        h = x
        for step in self._steps:
            h = step.eval_forward(h, n)
        return h

    def clip_gradients(self, max_norm: float) -> np.ndarray:
        """Per-member global-norm clip, in place on the gradient slab
        rows (same per-parameter ``np.vdot`` association as the
        sequential plan)."""
        na = self.n_active
        norms = np.empty(na)
        for row in range(na):
            total = 0.0
            for (_step, _si, lo, hi, _shape) in self._psegs:
                seg = self.grads[row, lo:hi]
                total += float(np.vdot(seg, seg))
            norm = float(np.sqrt(total))
            norms[row] = norm
            if norm > max_norm:
                self.grads[row] *= max_norm / (norm + 1e-12)
        return norms

    def __repr__(self):
        return (f"FleetTrainingPlan(k={self.k}, "
                f"active={self.n_active}, steps={len(self._steps)}, "
                f"n_flat={self.n_flat})")


def fleet_training_fingerprint(model: L.Module, loss_fn=mse_loss) -> str:
    """Fleet grouping key for training: structure with per-member knobs
    (dropout rate) masked, plus the loss token.  Models sharing this
    fingerprint (and a batch size) can train as one fleet."""
    return fleet_fingerprint(model, extra=("train", loss_token(loss_fn)))


def compile_fleet_training(models, loss_fn=mse_loss) -> FleetTrainingPlan:
    """Compile K same-fleet-fingerprint models + ``loss_fn`` into one
    stacked training plan; raises :class:`UnsupportedLayerError` on
    mixed structures or unsupported layers/losses (callers fall back to
    sequential per-model training)."""
    return FleetTrainingPlan(models, loss_fn)
