"""Compiled training fast path: fused forward/backward plans + fused optimizer.

PR 1 compiled *inference* (:mod:`repro.nn.compile`); this module does
the same for *training*, the remaining hot path: every
``Trainer._epoch`` minibatch on the graph path allocates dozens of
autodiff ``Tensor`` intermediates, and ``Adam.step`` loops over
parameters in Python.  Since the online serving layer retrains
in-process (``serving.retrain.RetrainWorker``) and the BO
hyperparameter search trains every candidate, epoch time bounds both
drift-recovery latency and search throughput.

:func:`compile_training` walks a model **once** and emits a
:class:`CompiledTrainingPlan`:

* **fused forward** — affine + activation steps over raw ndarrays into
  preallocated per-batch-size scratch, stashing only the activations
  the backward pass needs (zero ``Tensor`` wrappers);
* **hand-derived backward** — per-step closures that replay the exact
  op sequence of the autodiff graph (same formulas, same association
  where it matters) and write parameter gradients straight into
  per-parameter views of one flat, preallocated gradient buffer;
* **fused optimizer** — :class:`FusedAdam` / :class:`FusedSGD` run the
  moment updates vectorized over the flat gradient/moment buffers
  (decoupled weight decay, in-place parameter updates) instead of a
  Python loop of temporaries per parameter;
* **in-place global-norm clipping** — :meth:`CompiledTrainingPlan.
  clip_gradients` accumulates per-parameter ``np.vdot`` and rescales
  the flat buffer in place.

Supported layer set is the deployed-surrogate zoo: ``Linear``,
ReLU/Tanh/Sigmoid/LeakyReLU, ``Dropout`` (train-mode masks drawn from
the layer's own RNG stream, so compiled and graph training consume
identical draws), ``BatchNorm1d`` (train mode, running-stat updates
included), ``Standardize``/``Destandardize``, ``Flatten``,
``Identity``, and ``Sequential`` nesting.  Anything else (GRU, convs)
raises :class:`UnsupportedLayerError` and callers fall back to the
graph path — :class:`~repro.nn.Trainer` does this automatically.

Numerical contract: with float64 data and fixed seeds the compiled
path reproduces the graph path's losses, gradients and parameter
trajectories to within a few ULP (element-wise ops are mirrored
exactly; the only divergence source is BLAS accumulation order inside
the weight-gradient GEMM).  ``tests/test_nn_compile_train.py`` pins
gradient parity at <= 1e-10 and identical early-stopping behavior.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from . import layers as L
from .compile import UnsupportedLayerError, _flatten_layers
from .loss import huber_loss, l1_loss, mape_loss, mse_loss
from .optim import SGD, Adam

__all__ = ["compile_training", "CompiledTrainingPlan", "FusedAdam",
           "FusedSGD", "UnsupportedLayerError"]


# ----------------------------------------------------------------------
# Scratch helpers
# ----------------------------------------------------------------------

class _StepBase:
    """A plan step owning per-batch-size scratch buffers."""

    __slots__ = ("_bufs",)

    def __init__(self):
        self._bufs: dict = {}

    def scratch(self, n: int) -> dict:
        s = self._bufs.get(n)
        if s is None:
            s = self._bufs[n] = {}
        return s

    def clear(self) -> None:
        self._bufs.clear()


def _buf(s: dict, key: str, shape: tuple, dtype=np.float64) -> np.ndarray:
    arr = s.get(key)
    if arr is None or arr.shape != shape:
        arr = s[key] = np.empty(shape, dtype=dtype)
    return arr


# ----------------------------------------------------------------------
# Activation kernels (forward into scratch, backward from stashed output)
# ----------------------------------------------------------------------

def _act_kind(layer):
    if isinstance(layer, L.ReLU):
        return ("relu", 0.0)
    if isinstance(layer, L.Tanh):
        return ("tanh", 0.0)
    if isinstance(layer, L.Sigmoid):
        return ("sigmoid", 0.0)
    if isinstance(layer, L.LeakyReLU):
        return ("leaky", layer.slope)
    return None


def _act_forward(kind, slope, z, s):
    """Apply activation in place on the pre-activation buffer ``z``."""
    if kind == "relu":
        np.maximum(z, 0.0, out=z)
    elif kind == "tanh":
        np.tanh(z, out=z)
    elif kind == "sigmoid":
        # 1 / (1 + exp(-x)) — the Tensor.sigmoid formula, in place.
        np.negative(z, out=z)
        np.exp(z, out=z)
        z += 1.0
        np.reciprocal(z, out=z)
    else:  # leaky
        mb = _buf(s, "act_mask", z.shape, dtype=bool)
        t = _buf(s, "act_t", z.shape)
        np.greater(z, 0.0, out=mb)
        t.fill(slope)
        np.copyto(t, 1.0, where=mb)
        np.multiply(z, t, out=z)


def _act_backward(kind, slope, g, out, s):
    """In-place ``g *= act'`` using the stashed activation *output*.

    All four activations admit derivative-from-output forms that match
    the graph path's derivative-from-input values exactly (for ReLU and
    LeakyReLU, ``out > 0`` iff ``pre > 0`` because the slope is
    positive).
    """
    if kind == "relu":
        mb = _buf(s, "act_mask", out.shape, dtype=bool)
        np.greater(out, 0.0, out=mb)
        np.multiply(g, mb, out=g)
    elif kind == "tanh":
        t = _buf(s, "act_t", out.shape)
        np.multiply(out, out, out=t)
        np.subtract(1.0, t, out=t)
        np.multiply(g, t, out=g)
    elif kind == "sigmoid":
        # Graph: g * out * (1 - out), associated as (g*out)*(1-out).
        t = _buf(s, "act_t", out.shape)
        np.multiply(g, out, out=g)
        np.subtract(1.0, out, out=t)
        np.multiply(g, t, out=g)
    else:  # leaky
        mb = _buf(s, "act_mask", out.shape, dtype=bool)
        t = _buf(s, "act_t", out.shape)
        np.greater(out, 0.0, out=mb)
        t.fill(slope)
        np.copyto(t, 1.0, where=mb)
        np.multiply(g, t, out=g)


# ----------------------------------------------------------------------
# Steps
# ----------------------------------------------------------------------

class _AffineStep(_StepBase):
    """Fused ``z = act(x @ W.T + b)`` with gradient writes into flat views.

    Backward: ``dz = g * act'(z)`` in place on the incoming gradient
    buffer, then ``gW = dz.T @ x`` and ``gb = dz.sum(0)`` straight into
    the plan's flat gradient buffer, and ``gx = dz @ W`` into step
    scratch (skipped for the first step of the plan).
    """

    __slots__ = ("w", "wt", "b_row", "act", "slope", "gw", "gb")

    def __init__(self, weight, bias, act, gw, gb):
        super().__init__()
        self.w = weight
        self.wt = weight.T                 # view: in-place updates flow
        self.b_row = bias.reshape(1, -1) if bias is not None else None
        if act is None:
            self.act, self.slope = None, 0.0
        else:
            self.act, self.slope = act
        self.gw = gw
        self.gb = gb

    def forward(self, x, n):
        if x.ndim != 2:
            raise ValueError(f"compiled training expects 2-D activations, "
                             f"got {x.shape}")
        s = self.scratch(n)
        z = _buf(s, "z", (n, self.wt.shape[1]))
        np.dot(x, self.wt, out=z)
        if self.b_row is not None:
            np.add(z, self.b_row, out=z)
        if self.act is not None:
            _act_forward(self.act, self.slope, z, s)
        s["x"] = x
        return z

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        if self.act is not None:
            _act_backward(self.act, self.slope, g, s["z"], s)
        np.dot(g.T, s["x"], out=self.gw)
        if self.gb is not None:
            # add.reduce is what np.sum dispatches to (bit-identical to
            # the graph path's unbroadcast sum) minus wrapper overhead.
            np.add.reduce(g, axis=0, out=self.gb)
        if not need_gx:
            return None
        gx = _buf(s, "gx", (n, self.w.shape[1]))
        np.dot(g, self.w, out=gx)
        return gx


class _ActStep(_StepBase):
    """Standalone activation (not fused behind a Linear)."""

    __slots__ = ("act", "slope")

    def __init__(self, act):
        super().__init__()
        self.act, self.slope = act

    def forward(self, x, n):
        s = self.scratch(n)
        z = _buf(s, "z", x.shape)
        np.copyto(z, x)
        _act_forward(self.act, self.slope, z, s)
        return z

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        _act_backward(self.act, self.slope, g, s["z"], s)
        return g


class _DropoutStep(_StepBase):
    """Inverted dropout with cached mask buffers.

    Draws from the layer's own RNG with ``Generator.random(out=...)``,
    which consumes exactly the same stream as the graph path's
    ``rng.random(x.shape)`` — fixed-seed training is bit-for-bit
    reproducible across the two paths.
    """

    __slots__ = ("layer", "keep")

    def __init__(self, layer):
        super().__init__()
        self.layer = layer
        self.keep = 1.0 - layer.p

    def forward(self, x, n):
        s = self.scratch(n)
        r = _buf(s, "r", x.shape)
        self.layer.rng.random(out=r)
        mb = _buf(s, "mask_bool", x.shape, dtype=bool)
        np.less(r, self.keep, out=mb)
        m = _buf(s, "mask", x.shape)
        np.divide(mb, self.keep, out=m)
        z = _buf(s, "z", x.shape)
        np.multiply(x, m, out=z)
        return z

    def backward(self, g, n, need_gx):
        np.multiply(g, self._bufs[n]["mask"], out=g)
        return g


class _BatchNormStep(_StepBase):
    """BatchNorm1d in train mode: batch stats + running-stat updates.

    The forward mirrors the graph ops (``mean = sum * (1/n)``, biased
    variance); the backward is the classic batch-norm adjoint derived
    from those exact ops — gradient flows through the batch mean and
    variance as well as the normalized activations.
    """

    __slots__ = ("layer", "gw", "gb")

    def __init__(self, layer, gw, gb):
        super().__init__()
        self.layer = layer
        self.gw = gw
        self.gb = gb

    def forward(self, x, n):
        if x.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, F) inputs, got "
                             f"{x.shape}")
        lay = self.layer
        s = self.scratch(n)
        inv_n = 1.0 / n
        mu = x.sum(axis=0, keepdims=True) * inv_n
        c = _buf(s, "c", x.shape)
        np.subtract(x, mu, out=c)
        sq = _buf(s, "sq", x.shape)
        np.multiply(c, c, out=sq)
        var = sq.sum(axis=0, keepdims=True) * inv_n
        # Rebinding assignments, exactly like the graph path (so any
        # inference plan watching the running stats goes stale too).
        lay.running_mean = ((1 - lay.momentum) * lay.running_mean
                            + lay.momentum * mu.ravel())
        lay.running_var = ((1 - lay.momentum) * lay.running_var
                           + lay.momentum * var.ravel())
        std = np.sqrt(var + lay.eps)
        norm = _buf(s, "norm", x.shape)
        np.divide(c, std, out=norm)
        z = _buf(s, "z", x.shape)
        np.multiply(norm, lay.weight.data, out=z)
        np.add(z, lay.bias.data, out=z)
        s["std"] = std
        s["inv_n"] = inv_n
        return z

    def backward(self, g, n, need_gx):
        s = self._bufs[n]
        c, sq, norm, std = s["c"], s["sq"], s["norm"], s["std"]
        inv_n = s["inv_n"]
        np.multiply(g, norm, out=sq)           # sq reused as scratch
        np.add.reduce(sq, axis=0, out=self.gw)
        np.add.reduce(g, axis=0, out=self.gb)
        dn = _buf(s, "dn", g.shape)
        np.multiply(g, self.layer.weight.data, out=dn)
        # d std via norm = c / std (the truediv adjoint, unbroadcast).
        np.multiply(dn, c, out=sq)
        np.negative(sq, out=sq)
        np.divide(sq, std * std, out=sq)
        dstd = sq.sum(axis=0, keepdims=True)
        dvar = dstd * 0.5 / std
        np.divide(dn, std, out=dn)             # dn = dc (from norm)
        gci = dvar * inv_n
        np.multiply(c, gci, out=sq)
        np.add(sq, sq, out=sq)                 # 2 * c * dvar / n
        np.add(dn, sq, out=dn)                 # total dc
        if not need_gx:
            return None
        dmu = dn.sum(axis=0, keepdims=True)
        np.negative(dmu, out=dmu)
        np.multiply(dmu, inv_n, out=dmu)
        gx = _buf(s, "gx", g.shape)
        np.add(dn, dmu, out=gx)
        return gx


class _StandardizeStep(_StepBase):
    """Frozen ``(x - mean) * (1/std)`` — constants, gradient is a scale."""

    __slots__ = ("mean", "inv_std")

    def __init__(self, layer):
        super().__init__()
        self.mean = layer.mean
        self.inv_std = 1.0 / layer.std

    def forward(self, x, n):
        s = self.scratch(n)
        z = _buf(s, "z", x.shape)
        np.subtract(x, self.mean, out=z)
        np.multiply(z, self.inv_std, out=z)
        return z

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        np.multiply(g, self.inv_std, out=g)
        return g


class _DestandardizeStep(_StepBase):
    """Frozen ``x * std + mean`` output head."""

    __slots__ = ("mean", "std")

    def __init__(self, layer):
        super().__init__()
        self.mean = layer.mean
        self.std = layer.std

    def forward(self, x, n):
        s = self.scratch(n)
        z = _buf(s, "z", x.shape)
        np.multiply(x, self.std, out=z)
        np.add(z, self.mean, out=z)
        return z

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        np.multiply(g, self.std, out=g)
        return g


class _FlattenStep(_StepBase):
    __slots__ = ("start_dim",)

    def __init__(self, start_dim):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x, n):
        s = self.scratch(n)
        s["shape"] = x.shape
        return x.reshape(x.shape[:self.start_dim] + (-1,))

    def backward(self, g, n, need_gx):
        if not need_gx:
            return None
        return g.reshape(self._bufs[n]["shape"])


# ----------------------------------------------------------------------
# Loss lowering
# ----------------------------------------------------------------------

class _CompiledLoss(_StepBase):
    """Loss value + seed gradient, mirroring the graph op sequence."""

    __slots__ = ("kind", "delta", "eps")

    def __init__(self, kind, delta=1.0, eps=1e-8):
        super().__init__()
        self.kind = kind
        self.delta = delta
        self.eps = eps

    def run(self, pred, target, n):
        if pred.shape != target.shape:
            raise ValueError(f"loss shape mismatch: {pred.shape} vs "
                             f"{target.shape}")
        s = self.scratch(n)
        d = _buf(s, "d", pred.shape)
        np.subtract(pred, target, out=d)
        inv = 1.0 / d.size
        g = _buf(s, "g", pred.shape)
        t = _buf(s, "t", pred.shape)
        kind = self.kind
        if kind == "mse":
            np.multiply(d, d, out=t)
            val = float(t.sum() * inv)
            # Graph: two (1/N)*diff accumulations — exact doubling.
            np.multiply(d, inv, out=g)
            np.add(g, g, out=g)
            return val, g
        if kind == "l1":
            np.abs(d, out=t)
            val = float(t.sum() * inv)
            np.sign(d, out=g)
            np.multiply(g, inv, out=g)
            return val, g
        if kind == "mape":
            denom = np.maximum(np.abs(target), self.eps)
            np.abs(d, out=t)
            np.divide(t, denom, out=t)
            val = float(t.sum() * inv)
            np.sign(d, out=g)
            np.multiply(g, inv, out=g)
            np.divide(g, denom, out=g)
            return val, g
        # huber: a = |d|; quad = clip(a, 0, delta); lin = a - quad;
        # loss = (quad*quad*0.5 + lin*delta).mean()
        delta = self.delta
        a = np.abs(d)
        quad = np.clip(a, 0.0, delta)
        lin = a - quad
        val = float((quad * quad * 0.5 + lin * delta).sum() * inv)
        gq = quad * (inv * 0.5)
        gq += gq
        gq -= inv * delta
        mask = (a >= 0.0) & (a <= delta)
        ga = inv * delta + gq * mask
        np.sign(d, out=g)
        np.multiply(g, ga, out=g)
        return val, g


def _resolve_loss(loss_fn) -> _CompiledLoss:
    base, kwargs = loss_fn, {}
    if isinstance(loss_fn, functools.partial):
        if loss_fn.args:
            raise UnsupportedLayerError(
                "compiled training supports keyword-only loss partials")
        base, kwargs = loss_fn.func, dict(loss_fn.keywords or {})
    if base is mse_loss and not kwargs:
        return _CompiledLoss("mse")
    if base is l1_loss and not kwargs:
        return _CompiledLoss("l1")
    if base is huber_loss and set(kwargs) <= {"delta"}:
        return _CompiledLoss("huber", delta=kwargs.get("delta", 1.0))
    if base is mape_loss and set(kwargs) <= {"eps"}:
        return _CompiledLoss("mape", eps=kwargs.get("eps", 1e-8))
    name = getattr(base, "__name__", repr(base))
    raise UnsupportedLayerError(f"no compiled training lowering for loss "
                                f"{name!r}")


# ----------------------------------------------------------------------
# Fused optimizers over flat gradient/moment buffers
# ----------------------------------------------------------------------

class FusedAdam:
    """Vectorized Adam/AdamW step over a plan's flat gradient buffer.

    Reads hyperparameters (``lr``, betas, ``eps``, ``weight_decay``)
    from the source :class:`~repro.nn.optim.Adam` on every step, so LR
    schedulers mutating ``optimizer.lr`` keep working.  Moment buffers
    are flat; the per-parameter tail applies decoupled weight decay and
    the in-place ``p -= lr * update`` (which, unlike the graph
    optimizer's rebinding update, lets compiled inference plans keep
    watching the same arrays).
    """

    __slots__ = ("plan", "src", "m", "v", "_u", "_s", "t", "_segs")

    def __init__(self, plan, src):
        n = plan.n_flat
        self.plan = plan
        self.src = src
        self.m = np.zeros(n)
        self.v = np.zeros(n)
        self._u = np.empty(n)
        self._s = np.empty(n)
        self.t = int(src._t)
        self._segs = [
            (p.data.reshape(-1), self._u[lo:hi], plan.grads[lo:hi])
            for p, (lo, hi) in zip(plan.params, plan.offsets)]

    def step(self) -> None:
        src = self.src
        lr, wd = src.lr, src.weight_decay
        b1, b2, eps = src.beta1, src.beta2, src.eps
        self.t += 1
        bias1 = 1.0 - b1 ** self.t
        bias2 = 1.0 - b2 ** self.t
        G, M, V, U, S = self.plan.grads, self.m, self.v, self._u, self._s
        M *= b1
        np.multiply(G, 1.0 - b1, out=U)
        M += U
        V *= b2
        np.multiply(G, G, out=S)
        S *= 1.0 - b2
        V += S
        np.divide(M, bias1, out=U)
        np.divide(V, bias2, out=S)
        np.sqrt(S, out=S)
        S += eps
        U /= S
        # Per-parameter tail: decoupled decay + in-place update.  The
        # gradient segment doubles as scratch (it is rewritten by the
        # next backward pass anyway).  Without decay the lr scale runs
        # once over the flat buffer instead of per segment.
        if wd:
            for pflat, useg, gseg in self._segs:
                np.multiply(pflat, wd, out=gseg)
                useg += gseg
                np.multiply(useg, lr, out=gseg)
                np.subtract(pflat, gseg, out=pflat)
        else:
            U *= lr
            for pflat, useg, _gseg in self._segs:
                np.subtract(pflat, useg, out=pflat)


class FusedSGD:
    """Vectorized SGD (momentum, L2 decay) over the flat gradient buffer."""

    __slots__ = ("plan", "src", "vel", "_s", "_segs")

    def __init__(self, plan, src):
        n = plan.n_flat
        self.plan = plan
        self.src = src
        self.vel = np.zeros(n) if src.momentum else None
        self._s = np.empty(n)
        self._segs = [
            (p.data.reshape(-1), self._s[lo:hi], plan.grads[lo:hi])
            for p, (lo, hi) in zip(plan.params, plan.offsets)]

    def step(self) -> None:
        src = self.src
        lr, mom, wd = src.lr, src.momentum, src.weight_decay
        G = self.plan.grads
        if wd:
            for pflat, sseg, gseg in self._segs:
                np.multiply(pflat, wd, out=sseg)
                gseg += sseg
        if mom:
            V = self.vel
            V *= mom
            V += G
            upd = V
        else:
            upd = G
        S = self._s
        np.multiply(upd, lr, out=S)
        for pflat, sseg, _gseg in self._segs:
            np.subtract(pflat, sseg, out=pflat)


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------

class CompiledTrainingPlan:
    """A fused forward/backward training closure over raw ndarrays.

    ``train_batch(x, y)`` runs one minibatch — forward with train-mode
    semantics, loss, and backward — leaving parameter gradients in
    per-parameter views of the flat :attr:`grads` buffer, and returns
    the scalar loss.  Pair with :meth:`bind_optimizer` for the fused
    update and :meth:`clip_gradients` for global-norm clipping.
    """

    __slots__ = ("_steps", "_loss", "params", "offsets", "n_flat", "grads",
                 "grad_views", "_watch", "_struct_watch", "summary",
                 "n_layers", "n_fused", "_keys", "_need_gx")

    def __init__(self, steps, loss_plan, params, watch, struct_watch,
                 summary, n_layers, n_fused):
        self._steps = tuple(steps)
        self._loss = loss_plan
        self.params = tuple(params)
        sizes = [p.data.size for p in self.params]
        bounds = np.concatenate(([0], np.cumsum(sizes))).astype(int)
        self.offsets = tuple((int(bounds[i]), int(bounds[i + 1]))
                             for i in range(len(sizes)))
        self.n_flat = int(bounds[-1])
        self.grads = np.zeros(self.n_flat)
        self.grad_views = tuple(
            self.grads[lo:hi].reshape(p.data.shape)
            for p, (lo, hi) in zip(self.params, self.offsets))
        self._watch = tuple(watch)
        self._struct_watch = tuple(struct_watch)
        self.summary = tuple(summary)
        self.n_layers = n_layers
        self.n_fused = n_fused
        self._keys: set = set()
        # Late-bind gradient views into the steps (built before the
        # flat buffer exists).
        cursor = 0
        for step in self._steps:
            if isinstance(step, (_AffineStep, _BatchNormStep)):
                step.gw = self.grad_views[cursor]
                cursor += 1
                if step.gb is not False:
                    step.gb = self.grad_views[cursor]
                    cursor += 1
                else:
                    step.gb = None
        # A step only needs an input gradient if some *earlier* step
        # holds parameters — skips the input-gradient GEMM of the first
        # Linear and the backward sweeps of leading Standardize/Flatten
        # steps (those gradients were discarded anyway).
        need = []
        seen_params = False
        for step in self._steps:
            need.append(seen_params)
            if isinstance(step, (_AffineStep, _BatchNormStep)):
                seen_params = True
        self._need_gx = tuple(need)

    def stale(self) -> bool:
        """True when the plan no longer describes the model.

        Trips on parameter-array rebinding (``load_state_dict``) and on
        structural ``Sequential`` mutation; the fused optimizer's
        in-place updates do **not** flip staleness.
        """
        for obj, name, arr in self._watch:
            if getattr(obj, name) is not arr:
                return True
        for seq, layer_list, n_layers in self._struct_watch:
            if seq.layers is not layer_list or len(layer_list) != n_layers:
                return True
        return False

    def bind_optimizer(self, opt):
        """Build the fused optimizer mirroring ``opt``'s hyperparameters.

        Raises :class:`UnsupportedLayerError` for optimizers without a
        fused lowering (custom subclasses, pre-stepped moment state, or
        a parameter set that differs from the plan's).
        """
        plan_ids = {id(p) for p in self.params}
        opt_ids = {id(p) for p in opt.params}
        if plan_ids != opt_ids:
            raise UnsupportedLayerError(
                "optimizer parameter set differs from the compiled plan's")
        if type(opt) is Adam:
            if any(m.any() for m in opt._m):
                raise UnsupportedLayerError(
                    "Adam has pre-stepped moment state; compiled training "
                    "requires a fresh optimizer")
            return FusedAdam(self, opt)
        if type(opt) is SGD:
            if opt.momentum and any(v.any() for v in opt._velocity):
                raise UnsupportedLayerError(
                    "SGD has pre-stepped velocity state; compiled training "
                    "requires a fresh optimizer")
            return FusedSGD(self, opt)
        raise UnsupportedLayerError(
            f"no fused lowering for optimizer {type(opt).__name__}")

    def train_batch(self, x, y) -> float:
        """One fused forward/backward minibatch; returns the loss."""
        x = np.asarray(x)
        y = np.asarray(y)
        if x.dtype != np.float64 or y.dtype != np.float64:
            raise TypeError("compiled training requires float64 arrays")
        n = x.shape[0]
        if n not in self._keys:
            if len(self._keys) > 16:
                for step in self._steps:
                    step.clear()
                self._loss.clear()
                self._keys.clear()
            self._keys.add(n)
        h = x
        for step in self._steps:
            h = step.forward(h, n)
        loss, g = self._loss.run(h, y, n)
        steps = self._steps
        need_gx = self._need_gx
        for i in range(len(steps) - 1, -1, -1):
            g = steps[i].backward(g, n, need_gx[i])
            if g is None:
                break
        return loss

    def clip_gradients(self, max_norm: float) -> float:
        """Global-norm clip, in place on the flat gradient buffer."""
        total = 0.0
        for view in self.grad_views:
            total += float(np.vdot(view, view))
        norm = float(np.sqrt(total))
        if norm > max_norm:
            self.grads *= max_norm / (norm + 1e-12)
        return norm

    def __repr__(self):
        return (f"CompiledTrainingPlan(layers={self.n_layers}, "
                f"steps={len(self._steps)}, fused={self.n_fused}, "
                f"params={len(self.params)})")


def compile_training(model: L.Module, loss_fn=mse_loss) -> CompiledTrainingPlan:
    """Compile ``model`` + ``loss_fn`` into a fused training plan.

    Raises :class:`UnsupportedLayerError` for layers, losses or
    optimizers without a training lowering — callers fall back to the
    autodiff graph path (``Trainer`` does so automatically).
    """
    loss_plan = _resolve_loss(loss_fn)
    struct_watch: list = []
    layers = _flatten_layers(model, struct_watch)
    steps: list = []
    params: list = []
    watch: list = []
    summary: list = []
    n_fused = 0

    def add_param(p):
        if p.data.dtype != np.float64 or not p.data.flags["C_CONTIGUOUS"]:
            raise UnsupportedLayerError(
                "compiled training requires contiguous float64 parameters")
        params.append(p)
        watch.append((p, "data", p.data))

    i = 0
    while i < len(layers):
        layer = layers[i]
        nxt = layers[i + 1] if i + 1 < len(layers) else None

        if isinstance(layer, L.Identity):
            summary.append("Identity: skipped")
            i += 1
            continue
        if isinstance(layer, L.Dropout):
            if layer.p > 0.0:
                steps.append(_DropoutStep(layer))
                summary.append(f"Dropout(p={layer.p}): cached masks")
            else:
                summary.append("Dropout(p=0): skipped")
            i += 1
            continue
        if isinstance(layer, L.Linear):
            act = _act_kind(nxt) if nxt is not None else None
            add_param(layer.weight)
            has_bias = layer.bias is not None
            if has_bias:
                add_param(layer.bias)
            step = _AffineStep(layer.weight.data,
                               layer.bias.data if has_bias else None,
                               act, None, None)
            # Marker consumed by the plan's late view binding.
            step.gb = None if has_bias else False
            steps.append(step)
            if act is not None:
                summary.append(f"Linear+{type(nxt).__name__}: fused "
                               "affine fwd/bwd")
                n_fused += 1
                i += 2
            else:
                summary.append("Linear: affine fwd/bwd")
                i += 1
            continue
        act = _act_kind(layer)
        if act is not None:
            steps.append(_ActStep(act))
            summary.append(f"{type(layer).__name__}: activation")
            i += 1
            continue
        if isinstance(layer, L.BatchNorm1d):
            add_param(layer.weight)
            add_param(layer.bias)
            steps.append(_BatchNormStep(layer, None, None))
            summary.append("BatchNorm1d: batch stats + running update")
            i += 1
            continue
        if isinstance(layer, L.Standardize):
            steps.append(_StandardizeStep(layer))
            watch.append((layer, "mean", layer.mean))
            watch.append((layer, "std", layer.std))
            summary.append("Standardize: affine constants")
            i += 1
            continue
        if isinstance(layer, L.Destandardize):
            steps.append(_DestandardizeStep(layer))
            watch.append((layer, "mean", layer.mean))
            watch.append((layer, "std", layer.std))
            summary.append("Destandardize: affine constants")
            i += 1
            continue
        if isinstance(layer, L.Flatten):
            steps.append(_FlattenStep(layer.start_dim))
            summary.append("Flatten: reshape view")
            i += 1
            continue
        raise UnsupportedLayerError(
            f"no compiled training lowering for {type(layer).__name__}")

    if not params:
        raise UnsupportedLayerError("model has no trainable parameters")
    return CompiledTrainingPlan(steps, loss_plan, params, watch,
                                struct_watch, summary, len(layers), n_fused)
