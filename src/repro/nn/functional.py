"""Vectorized neural-network primitives (im2col convolution, pooling).

These free functions operate on :class:`repro.nn.tensor.Tensor` and
implement the dense kernels the paper delegates to the Torch backend.
All hot loops are expressed as NumPy stride-tricks views plus matrix
multiplies, following the vectorize-don't-loop idiom: an ``im2col``
gather turns convolution into a single GEMM, which is how production
inference engines realize conv layers on CPUs.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "linear", "conv1d", "conv2d", "max_pool1d", "max_pool2d",
    "avg_pool2d", "dropout", "softmax", "log_softmax", "im2col", "col2im",
    "conv_output_size", "max_pool2d_raw", "max_pool1d_raw", "avg_pool2d_raw",
]


def conv_output_size(n: int, kernel: int, stride: int, padding: int = 0) -> int:
    """Output length of a 1-D convolution/pooling window sweep."""
    return (n + 2 * padding - kernel) // stride + 1


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with Torch weight layout (out, in)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# im2col machinery
# ----------------------------------------------------------------------

def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Gather sliding ``kh x kw`` patches of ``x`` (N, C, H, W) into columns.

    Returns an array of shape ``(N, out_h, out_w, C*kh*kw)``.  Uses a
    zero-copy strided view followed by one reshape-copy, so the cost is a
    single pass over the gathered patches.
    """
    n, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        h += 2 * padding
        w += 2 * padding
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, out_h, out_w, C, kh, kw) -> flatten patch dims.
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n, out_h, out_w, c * kh * kw)
    return np.ascontiguousarray(cols)


def col2im(cols: np.ndarray, x_shape: tuple, kh: int, kw: int,
           stride: int, padding: int) -> np.ndarray:
    """Scatter-add columns back to image layout (adjoint of :func:`im2col`)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1
    x = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    patch = cols.reshape(n, out_h, out_w, c, kh, kw)
    for ih in range(kh):
        for iw in range(kw):
            x[:, :, ih:ih + stride * out_h:stride, iw:iw + stride * out_w:stride] += \
                patch[:, :, :, :, ih, iw].transpose(0, 3, 1, 2)
    if padding:
        x = x[:, :, padding:-padding, padding:-padding]
    return x


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D cross-correlation.

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in, kh, kw);
    ``bias``: (C_out,).  Implemented as im2col + GEMM.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input {c_in} vs weight {c_in_w}")
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, kh, kw, stride, padding)        # (N, oh, ow, C*kh*kw)
    wmat = weight.data.reshape(c_out, -1)                 # (C_out, C*kh*kw)
    out_data = cols @ wmat.T                              # (N, oh, ow, C_out)
    out_data = out_data.transpose(0, 3, 1, 2)             # (N, C_out, oh, ow)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g):
        # g: (N, C_out, oh, ow)
        gmat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)       # (N*oh*ow, C_out)
        cols_flat = cols.reshape(-1, cols.shape[-1])            # (N*oh*ow, C*kh*kw)
        gw = (gmat.T @ cols_flat).reshape(weight.shape)
        gcols = (gmat @ wmat).reshape(n, out_h, out_w, -1)
        gx = col2im(gcols, x.data.shape, kh, kw, stride, padding)
        if bias is None:
            return gx, gw
        gb = g.sum(axis=(0, 2, 3))
        return gx, gw, gb

    return Tensor._make(out_data, parents, backward)


def conv1d(x: Tensor, weight: Tensor, bias: Tensor | None = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """1-D cross-correlation via the 2-D kernel with a unit height."""
    n, c_in, length = x.shape
    c_out, _, k = weight.shape
    x4 = x.reshape(n, c_in, 1, length)
    w4 = weight.reshape(c_out, c_in, 1, k)
    out = conv2d(x4, w4, bias, stride=stride, padding=0)
    if padding:
        raise NotImplementedError("conv1d padding: pad the input explicitly")
    oh = out.shape[-1]
    return out.reshape(n, c_out, oh)


def max_pool2d_raw(x: np.ndarray, kernel: int, stride: int):
    """Forward max-pool on a raw array: ``(out, argmax, out_h, out_w)``.

    Shared between the autodiff op below and the compiled fast path.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride)
    out_w = conv_output_size(w, kernel, stride)
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    flat = view.reshape(n, c, out_h, out_w, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    return out, arg, out_h, out_w


def max_pool1d_raw(x: np.ndarray, kernel: int, stride: int):
    """Forward 1-D max-pool on a raw array: ``(out, argmax)``."""
    n, c, length = x.shape
    out_l = conv_output_size(length, kernel, stride)
    x4 = x.reshape(n, c, 1, length)
    sn, sc, sh, sw = x4.strides
    view = np.lib.stride_tricks.as_strided(
        x4, shape=(n, c, 1, out_l, 1, kernel),
        strides=(sn, sc, sh, sw * stride, sh, sw), writeable=False)
    flat = view.reshape(n, c, out_l, kernel)
    arg = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    return out, arg


def avg_pool2d_raw(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Forward average-pool on a raw array."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride)
    out_w = conv_output_size(w, kernel, stride)
    sn, sc, sh, sw = x.strides
    view = np.lib.stride_tricks.as_strided(
        x, shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw), writeable=False)
    return view.mean(axis=(-1, -2))


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping-or-strided ``kernel x kernel`` windows."""
    stride = stride or kernel
    out_data, arg, out_h, out_w = max_pool2d_raw(x.data, kernel, stride)

    def backward(g):
        gx = np.zeros_like(x.data)
        # Scatter each window gradient back to the argmax position.
        ih = arg // kernel
        iw = arg % kernel
        n_idx, c_idx, oh_idx, ow_idx = np.indices(arg.shape)
        rows = oh_idx * stride + ih
        cols_ = ow_idx * stride + iw
        np.add.at(gx, (n_idx, c_idx, rows, cols_), g)
        return (gx,)

    return Tensor._make(out_data, (x,), backward)


def max_pool1d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """1-D max pooling (reduces over the trailing axis)."""
    n, c, length = x.shape
    out = max_pool2d(x.reshape(n, c, 1, length), kernel=1, stride=1) \
        if kernel == 1 else None
    if kernel == 1:
        return out.reshape(n, c, length)
    stride = stride or kernel
    out_data, arg = max_pool1d_raw(x.data, kernel, stride)

    def backward(g):
        gx = np.zeros_like(x.data)
        n_idx, c_idx, ol_idx = np.indices(arg.shape)
        cols_ = ol_idx * stride + arg
        np.add.at(gx, (n_idx, c_idx, cols_), g)
        return (gx,)

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling; backward distributes gradient uniformly per window."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride)
    out_w = conv_output_size(w, kernel, stride)
    out_data = avg_pool2d_raw(x.data, kernel, stride)

    def backward(g):
        gx = np.zeros_like(x.data)
        scale = 1.0 / (kernel * kernel)
        for ih in range(kernel):
            for iw in range(kernel):
                gx[:, :, ih:ih + stride * out_h:stride,
                   iw:iw + stride * out_w:stride] += g * scale
        return (gx,)

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: identity at inference, mask-and-rescale in training."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep) / keep
    return Tensor._make(x.data * mask, (x,), lambda g: (g * mask,))


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()
