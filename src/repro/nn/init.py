"""Parameter initializers (Kaiming / Xavier families)."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros", "uniform_bias"]


def kaiming_uniform(shape: tuple, fan_in: int, rng: np.random.Generator,
                    a: float = math.sqrt(5.0)) -> np.ndarray:
    """Kaiming-uniform init as used by Torch's Linear/Conv default."""
    gain = math.sqrt(2.0 / (1.0 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: tuple, fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def uniform_bias(shape: tuple, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)
