"""Futures-based DAG task executor (the "Parsl" substrate, §V-C/A4).

The paper orchestrates its model-search campaign with Parsl apps wired
into a dataflow.  This module provides the same programming surface at
the scale this reproduction needs: ``@task``-decorated callables return
:class:`TaskFuture` handles when invoked through a :class:`WorkflowExecutor`;
passing a future as an argument creates a dependency edge, and
independent tasks run concurrently on a thread pool (our kernels are
NumPy-bound, which releases the GIL).
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

__all__ = ["TaskFuture", "WorkflowExecutor", "task", "WorkflowError"]


class WorkflowError(RuntimeError):
    """A task failed; carries the originating task name."""

    def __init__(self, task_name: str, cause: BaseException):
        super().__init__(f"task {task_name!r} failed: {cause!r}")
        self.task_name = task_name
        self.cause = cause


@dataclass
class TaskFuture:
    """Handle to an asynchronously executing task."""

    name: str
    future: Future = field(repr=False)

    def result(self, timeout: float | None = None):
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future.done()

    def exception(self, timeout: float | None = None):
        return self.future.exception(timeout)


def _resolve(value):
    if isinstance(value, TaskFuture):
        return value.result()
    if isinstance(value, (list, tuple)):
        return type(value)(_resolve(v) for v in value)
    if isinstance(value, dict):
        return {k: _resolve(v) for k, v in value.items()}
    return value


class WorkflowExecutor:
    """Submit callables; futures passed as args become dependencies."""

    def __init__(self, max_workers: int = 4):
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._lock = threading.Lock()
        self.submitted = 0
        self.completed = 0

    def submit(self, fn, *args, name: str | None = None, **kwargs) -> TaskFuture:
        task_name = name or getattr(fn, "__name__", "task")

        def run():
            try:
                resolved_args = _resolve(list(args))
                resolved_kwargs = _resolve(kwargs)
                result = fn(*resolved_args, **resolved_kwargs)
            except WorkflowError:
                raise
            except BaseException as exc:
                raise WorkflowError(task_name, exc) from exc
            with self._lock:
                self.completed += 1
            return result

        with self._lock:
            self.submitted += 1
        return TaskFuture(name=task_name, future=self._pool.submit(run))

    def map(self, fn, items, name: str | None = None) -> list:
        return [self.submit(fn, item, name=f"{name or fn.__name__}[{i}]")
                for i, item in enumerate(items)]

    def wait_all(self, futures: list) -> list:
        return [f.result() for f in futures]

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.shutdown()
        return False


def task(fn=None, *, executor: WorkflowExecutor | None = None):
    """Parsl-style decorator: calling the function submits a task.

    With no executor bound at decoration time, the call site must pass
    ``_executor=``; this keeps module-level task definitions free of
    global state.
    """

    def wrap(f):
        def call(*args, _executor: WorkflowExecutor | None = None, **kwargs):
            ex = _executor or executor
            if ex is None:
                raise WorkflowError(f.__name__,
                                    RuntimeError("no executor bound"))
            return ex.submit(f, *args, **kwargs)

        call.__name__ = f.__name__
        call.__wrapped__ = f
        return call

    return wrap if fn is None else wrap(fn)
