"""End-to-end search campaign: the A4 artifact's two-step workflow.

``SearchCampaign`` chains the paper's model-training and
benchmark-evaluation steps: collect training data through the annotated
region, run the nested BO neural-architecture search, then deploy every
(or each requested) model back into the application and measure
speedup/error.  The deployment evaluations fan out on the workflow
executor, mirroring the Parsl orchestration of the original artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..apps.harness import AppHarness, DeploymentMetrics, harness_for
from ..search import NASResult, NestedSearch, arch_space_for
from .executor import WorkflowExecutor

__all__ = ["SearchCampaign", "CampaignResult", "campaign_for"]


@dataclass
class CampaignResult:
    benchmark: str
    nas: NASResult
    deployments: list = field(default_factory=list)  # [(ModelTrial, DeploymentMetrics)]

    def best_deployment(self, error_cutoff: float | None = None):
        pool = self.deployments
        if error_cutoff is not None:
            filtered = [(t, m) for t, m in pool if m.qoi_error < error_cutoff]
            pool = filtered or pool
        return min(pool, key=lambda tm: tm[1].qoi_error)

    def fastest_deployment(self, error_cutoff: float | None = None):
        pool = self.deployments
        if error_cutoff is not None:
            filtered = [(t, m) for t, m in pool if m.qoi_error < error_cutoff]
            pool = filtered or pool
        return max(pool, key=lambda tm: tm[1].speedup)


class SearchCampaign:
    """Drive collect → NAS → deploy for one benchmark harness."""

    def __init__(self, harness: AppHarness, n_outer: int = 8,
                 n_inner: int = 4, max_epochs: int = 15, seed: int = 0):
        self.harness = harness
        self.n_outer = n_outer
        self.n_inner = n_inner
        self.max_epochs = max_epochs
        self.seed = seed

    def run(self, deploy: str = "pareto",
            executor: WorkflowExecutor | None = None) -> CampaignResult:
        """Execute the full campaign.

        ``deploy`` selects which searched models get embedded back into
        the application: ``"pareto"`` (the front, as Figs. 7/8 plot),
        ``"all"``, or ``"best"`` (lowest validation error only).
        """
        h = self.harness
        h.collect()
        (x_train, y_train), (x_val, y_val) = h.training_arrays()
        build = h.make_builder(x_train, y_train)

        search = NestedSearch(
            arch_space=arch_space_for(h.name), build_model=build,
            x_train=x_train, y_train=y_train, x_val=x_val, y_val=y_val,
            n_inner=self.n_inner, max_epochs=self.max_epochs,
            seed=self.seed)
        nas = search.run(n_outer=self.n_outer)

        if deploy == "all":
            chosen = nas.trials
        elif deploy == "best":
            chosen = [nas.best_by_error()]
        else:
            chosen = nas.pareto_trials()

        deployments = []
        # Deployment measurements share the harness (regions hold state),
        # so they run serially; the executor parallelizes campaigns
        # across benchmarks instead.
        for trial in chosen:
            metrics = h.evaluate(trial.model)
            deployments.append((trial, metrics))
        return CampaignResult(benchmark=h.name, nas=nas,
                              deployments=deployments)


def campaign_for(benchmark: str, workdir, seed: int = 0,
                 harness_kwargs: dict | None = None,
                 **campaign_kwargs) -> SearchCampaign:
    harness = harness_for(benchmark, workdir, seed=seed,
                          **(harness_kwargs or {}))
    return SearchCampaign(harness, seed=seed, **campaign_kwargs)


def run_campaigns(benchmarks: list, workdir, max_workers: int = 2,
                  seed: int = 0, harness_kwargs: dict | None = None,
                  **campaign_kwargs) -> dict:
    """Run several benchmark campaigns concurrently (the Parsl-style
    fan-out of the paper's A4 workflow).

    Each campaign owns a private harness/workdir, so the only shared
    state is the thread pool.  Returns ``{benchmark: CampaignResult}``.
    """
    from pathlib import Path
    results: dict = {}
    with WorkflowExecutor(max_workers=max_workers) as executor:
        futures = {}
        for name in benchmarks:
            campaign = campaign_for(
                name, Path(workdir) / name, seed=seed,
                harness_kwargs=(harness_kwargs or {}).get(name),
                **campaign_kwargs)
            futures[name] = executor.submit(campaign.run,
                                            name=f"campaign[{name}]")
        for name, future in futures.items():
            results[name] = future.result()
    return results
