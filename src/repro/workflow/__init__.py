"""``repro.workflow`` — futures-based workflow executor (Parsl substrate)."""

from .executor import TaskFuture, WorkflowExecutor, task, WorkflowError
from .pipeline import SearchCampaign, campaign_for, run_campaigns

__all__ = ["TaskFuture", "WorkflowExecutor", "task", "WorkflowError",
           "SearchCampaign", "campaign_for", "run_campaigns"]
