"""Quickstart: the paper's Fig. 2 example, end to end.

A 2-D Jacobi stencil timestep is annotated with HPAC-ML directives.
The same annotated region first *collects* training data while the
original kernel runs, then — after an offline training step — *infers*
with the trained surrogate instead of executing the kernel.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import approx_ml
from repro.nn import Linear, ReLU, Sequential, Trainer, rmse, save_model
from repro.runtime import EventLog, load_training_data

workdir = Path(tempfile.mkdtemp(prefix="hpacml_quickstart_"))
DB = workdir / "stencil.rh5"
MODEL = workdir / "stencil.rnm"
events = EventLog()

# ----------------------------------------------------------------------
# 1. Annotate the code region (directives verbatim from paper Fig. 2,
#    with the predicated condition exposed as a region argument).
# ----------------------------------------------------------------------

@approx_ml(f"""
#pragma approx tensor functor(ifnctr: \\
    [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
#pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))
#pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))
#pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))
#pragma approx ml(predicated:use_model) in(t) out(tnew) \\
    db("{DB}") model("{MODEL}")
""", event_log=events)
def do_timestep(t, tnew, N, M, use_model=False):
    """The accurate execution path: a 5-point Jacobi average."""
    tnew[1:N - 1, 1:M - 1] = 0.2 * (
        t[:N - 2, 1:M - 1] + t[2:, 1:M - 1] + t[1:N - 1, :M - 2]
        + t[1:N - 1, 1:M - 1] + t[1:N - 1, 2:])


def simulate(steps, N, M, use_model, seed=0):
    rng = np.random.default_rng(seed)
    t = rng.random((N, M))
    tnew = np.zeros_like(t)
    for _ in range(steps):
        do_timestep(t, tnew, N, M, use_model=use_model)
        t, tnew = tnew, t
    return t


def main():
    N, M = 32, 32

    # -- Phase 1: data collection (predicated condition is False) -----
    print("collecting training data through the accurate path...")
    simulate(steps=40, N=N, M=M, use_model=False)
    do_timestep.flush()
    x, y, region_time = load_training_data(DB, "do_timestep")
    print(f"  collected {len(x)} (input, output) pairs; "
          f"db size {DB.stat().st_size / 1e3:.1f} kB")

    # -- Phase 2: offline training (the ML engineer's step) -----------
    print("training a surrogate on the collected database...")
    model = Sequential(Linear(5, 32, rng=np.random.default_rng(0)), ReLU(),
                       Linear(32, 1, rng=np.random.default_rng(1)))
    n = int(0.8 * len(x))
    result = Trainer(model, lr=5e-3, batch_size=256, max_epochs=60,
                     patience=60).fit(x[:n], y[:n], x[n:], y[n:])
    save_model(model, MODEL)
    print(f"  validation loss {result.best_val_loss:.2e} "
          f"after {result.epochs_run} epochs")

    # -- Phase 3: deployment (flip the predicate — no other change) ---
    print("deploying the surrogate in the application...")
    reference = simulate(steps=10, N=N, M=M, use_model=False, seed=1)
    surrogate = simulate(steps=10, N=N, M=M, use_model=True, seed=1)
    err = rmse(surrogate[1:-1, 1:-1], reference[1:-1, 1:-1])
    print(f"  QoI RMSE vs accurate simulation: {err:.4f}")

    br = events.breakdown()
    print("runtime breakdown of the inference path (Fig. 6 style):")
    for phase, frac in br.items():
        print(f"  {phase:>12}: {100 * frac:5.1f}%")


if __name__ == "__main__":
    main()
