"""Multi-region serving: one server, one error budget, online retrain.

Two benchmarks — Binomial-Options and Bonds — register their
approximated regions on a single :class:`~repro.serving.RegionServer`.
A :class:`~repro.serving.QoSArbiter` splits one global error budget
across both regions, and a :class:`~repro.serving.RetrainWorker` runs
in the background watching their training databases.

The walkthrough then drifts the Binomial workload (spot prices jump):
shadow validation sees the error climb, the drift detector answers
with a collection burst that refreshes the training DB with rows from
the drifted distribution, the worker retrains in the background and
**hot-swaps** the model file under the live server — no restart — and
serving recovers, with both regions' deployed QoI errors back under
the shared budget.

Run:  PYTHONPATH=src python examples/serve_multi_region.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.apps import binomial as binomial_app
from repro.apps.harness import BinomialHarness, BondsHarness
from repro.nn import Trainer
from repro.qos import DriftBurstPolicy
from repro.serving import QoSArbiter, RegionServer, RetrainWorker

ARCHS = {
    "binomial": {"hidden1_features": 48, "hidden2_features": 24},
    # Bonds regresses two outputs (value + accrued interest); it needs
    # the wider Table IV size to serve its QoI accurately.
    "bonds": {"hidden1_features": 96, "hidden2_features": 48},
}
EPOCHS = {"binomial": 40, "bonds": 80}


def train(harness, seed=0):
    harness.collect()
    (xt, yt), (xv, yv) = harness.training_arrays()
    model = harness.make_builder(xt, yt)(ARCHS[harness.name], seed=seed)
    result = Trainer(model, lr=3e-3, batch_size=128,
                     max_epochs=EPOCHS[harness.name],
                     patience=30, seed=seed).fit(xt, yt, xv, yv)
    harness.install_model(model)
    return result.best_val_loss


def relative(pred, ref):
    return float(np.linalg.norm(pred - ref) / np.linalg.norm(ref))


def serve_binomial(server, options, chunk=16):
    prices = np.empty(len(options))
    for start in range(0, len(options), chunk):
        block = np.ascontiguousarray(options[start:start + chunk])
        n = len(block)
        server.invoke("binomial", block, prices[start:start + n], n,
                      use_model=True)
    server.flush("binomial")
    return prices


def main():
    workdir = Path(tempfile.mkdtemp(prefix="hpacml_serve_"))

    # One server hosts both regions; each harness registers its region
    # on it instead of wiring a private controller.
    server = RegionServer()
    binomial_h = BinomialHarness(workdir / "binomial", n_train=2048,
                                 n_test=512, n_steps=48, deploy_chunk=16,
                                 server=server)
    bonds_h = BondsHarness(workdir / "bonds", n_train=2048, n_test=512,
                           deploy_chunk=16, server=server)
    print("training both surrogates...")
    for harness in (binomial_h, bonds_h):
        val = train(harness)
        print(f"  {harness.name:9s} val loss {val:.2e}")
    print(f"server: {server}")

    # References for deployed-error reporting (computed unmonitored).
    bin_acc = binomial_h.run_accurate()
    bonds_acc = bonds_h.run_accurate()
    base_err = max(relative(binomial_h.run_surrogate(), bin_acc),
                   relative(bonds_h.run_surrogate(), bonds_acc))

    budget = max(3.0 * base_err, 0.06)
    arbiter = QoSArbiter(
        budget, shadow_rate=0.3, seed=0, warmup=2, pessimistic=True,
        policies=[DriftBurstPolicy(burst=24, threshold=0.05, burn_in=2)])
    server.attach_qos(arbiter)
    print(f"\nglobal error budget {budget:.3f} shared by "
          f"{len(server.names)} regions")

    # Background retrainer: watches the binomial DB for drift-burst
    # refreshes; on retrain it hot-swaps the model file and resets the
    # arbiter's stale error stats for the region.
    worker = RetrainWorker(seed=1)
    worker.watch("binomial", binomial_h.db_path, binomial_h.model_path,
                 build=lambda xt, yt:
                 binomial_h.make_builder(xt, yt)(ARCHS["binomial"],
                                                 seed=11),
                 trainer_kwargs=dict(lr=3e-3, batch_size=128,
                                     max_epochs=30, patience=12),
                 min_new_rows=32, engines=[binomial_h.engine], qos=arbiter)
    worker.start(interval=0.1)

    print("\nserving both regions in-distribution...")
    serve_binomial(server, binomial_h.test_opts)
    bonds_dep = relative(bonds_h.run_surrogate(), bonds_acc)
    stats = arbiter.stats_for("binomial")
    print(f"  binomial shadow ewma {stats.mean:.4f}; bonds deployed "
          f"error {bonds_dep:.4f}")

    print("\nworkload drifts: binomial spot prices jump 1.8x...")
    drifted = binomial_h.test_opts.copy()
    drifted[:, 0] *= 1.8
    drifted_acc = binomial_app.kernel.price_american(
        drifted, n_steps=binomial_h.n_steps)
    serve_binomial(server, drifted)
    stats = arbiter.stats_for("binomial")
    drifts = arbiter.snapshot()["policy"]["members"][0]["drifts"]
    print(f"  shadow ewma {stats.mean:.4f}; drift events {drifts}; "
          "collect bursts refreshed the training DB")

    deadline = time.time() + 60.0
    while not worker.events and time.time() < deadline:
        time.sleep(0.05)
    worker.stop()
    for event in worker.events:
        print(f"  background retrain: {event.new_rows} fresh rows, "
              f"val loss {event.val_loss:.2e}, hot-swapped in "
              f"{event.seconds:.1f}s — server never restarted")

    print("\nserving the drifted workload with the hot-swapped model...")
    post_prices = serve_binomial(server, drifted)
    bonds_dep = relative(bonds_h.run_surrogate(), bonds_acc)
    bin_dep = relative(post_prices, drifted_acc)
    stats = arbiter.stats_for("binomial")
    print(f"  binomial shadow ewma {stats.mean:.4f}, deployed error "
          f"{bin_dep:.4f}; bonds deployed error {bonds_dep:.4f}")
    ok = bin_dep <= budget and bonds_dep <= budget
    print(f"  both regions under the global budget {budget:.3f}: {ok}")

    rollup = arbiter.snapshot()["rollup"]
    print(f"\nfleet roll-up: {rollup['invocations']} invocations across "
          f"{rollup['regions']} regions, infer fraction "
          f"{rollup['infer_fraction']:.2f}, "
          f"{rollup['shadow_invocations']} shadow validations")
    server.detach_qos()


if __name__ == "__main__":
    main()
