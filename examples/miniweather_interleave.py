"""MiniWeather: auto-regressive error growth and if-clause interleaving.

Paper Observation 4 / Fig. 9: in iterative auto-regressive use, the
surrogate's error compounds across timesteps; HPAC-ML's ``if`` clause
interleaves accurate solver steps with surrogate steps to suppress it,
trading away part of the speedup.

Run:  python examples/miniweather_interleave.py
"""

import tempfile

import numpy as np

from repro.apps.harness import MiniWeatherHarness
from repro.nn import Trainer


def main():
    workdir = tempfile.mkdtemp(prefix="hpacml_mw_")
    harness = MiniWeatherHarness(workdir, nx=32, nz=16, train_steps=140,
                                 test_steps=24)

    print("collecting (state_t, state_t+1) pairs from the solver...")
    harness.collect()
    (x_train, y_train), (x_val, y_val) = harness.training_arrays()

    print("training the grid-to-grid CNN surrogate...")
    build = harness.make_builder(x_train, y_train)
    model = build({"conv1_kernel": 5, "conv1_channels": 8,
                   "conv2_kernel": 3}, seed=0)
    result = Trainer(model, lr=2e-3, batch_size=16, max_epochs=40,
                     patience=12, seed=0).fit(x_train, y_train,
                                              x_val, y_val)
    harness.install_model(model)
    print(f"  one-step val loss {result.best_val_loss:.2e}")

    configs = [("0:1 pure surrogate", lambda i: True),
               ("1:1 interleaved", lambda i: i % 2 == 1),
               ("2:1 interleaved", lambda i: i % 3 == 2)]
    steps = harness.test_steps
    print(f"\nper-timestep RMSE vs the accurate trajectory "
          f"(Fig. 9e, {steps} steps):")
    header = "step " + "".join(f"{label:>22}" for label, _ in configs)
    print(header)
    series = {label: harness.trajectory_errors(sched, steps)
              for label, sched in configs}
    for s in range(0, steps, max(1, steps // 8)):
        row = f"{s + 1:>4} " + "".join(
            f"{series[label][s]:>22.4f}" for label, _ in configs)
        print(row)

    pure = series["0:1 pure surrogate"]
    print(f"\npure-surrogate error growth over {steps} steps: "
          f"{pure[-1] / max(pure[0], 1e-12):.1f}x "
          "(paper: ~order of magnitude in 10 steps)")
    print("interleaving accurate steps suppresses the growth, at the "
          "cost of running the original solver part of the time.")


if __name__ == "__main__":
    main()
