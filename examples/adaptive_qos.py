"""Adaptive QoS walkthrough: shadow validation, drift, burst, retrain.

Deploys a Binomial-Options surrogate, then shifts the serving workload
off the training distribution (spot prices double).  The paper's
static modes would keep inferring silently; the QoS subsystem's shadow
validator sees the per-invocation error climb, the Page-Hinkley
detector fires, a collection burst refreshes the training database
with rows from the *drifted* distribution, and retraining on the
refreshed DB brings the online error estimate back down.

Run:  PYTHONPATH=src python examples/adaptive_qos.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.apps.harness import BinomialHarness
from repro.nn import Trainer
from repro.qos import (CompositePolicy, DriftBurstPolicy, QoSController,
                       ThresholdPolicy)


def serve(harness, options, controller, chunk=16, use_model=True):
    """A serving loop: chunked region invocations over a workload."""
    region = harness.deploy_region
    region.config.qos = controller
    prices = np.empty(len(options))
    try:
        for start in range(0, len(options), chunk):
            block = np.ascontiguousarray(options[start:start + chunk])
            n = len(block)
            region(block, prices[start:start + n], n, use_model=use_model)
        region.flush()
    finally:
        region.config.qos = None
    return prices


def train(harness, epochs=40, seed=0):
    (xt, yt), (xv, yv) = harness.training_arrays()
    model = harness.make_builder(xt, yt)(
        {"hidden1_features": 48, "hidden2_features": 24}, seed=seed)
    result = Trainer(model, lr=3e-3, batch_size=128, max_epochs=epochs,
                     patience=12, seed=seed).fit(xt, yt, xv, yv)
    harness.install_model(model)
    return model, result.best_val_loss


def main():
    workdir = tempfile.mkdtemp(prefix="hpacml_qos_")
    harness = BinomialHarness(workdir, n_train=2048, n_test=512, n_steps=48)

    print("collecting training data and fitting the surrogate...")
    harness.collect()
    model, val_loss = train(harness)
    print(f"  val loss {val_loss:.2e}")

    policy = CompositePolicy(
        DriftBurstPolicy(burst=8, threshold=0.25, burn_in=3),
        ThresholdPolicy(high=0.15, low=0.05, probe_interval=4))
    controller = QoSController(policy=policy, shadow_rate=0.4, seed=0)

    print("\nserving the in-distribution workload under QoS...")
    serve(harness, harness.test_opts, controller)
    stats = controller.stats_for("binomial")
    print(f"  shadow error: ewma {stats.mean:.4f}, "
          f"p95 {stats.quantile:.4f} over {stats.count} validations")

    print("\nworkload drifts: spot prices jump 2x...")
    shifted = harness.test_opts.copy()
    shifted[:, 0] *= 2.0
    db_rows_before = harness.training_arrays()[0][0].shape[0]
    serve(harness, shifted, controller)
    harness.deploy_region.flush()
    snap = controller.snapshot()
    stats = controller.stats_for("binomial")
    member = snap["policy"]["members"][0]
    print(f"  shadow error: ewma {stats.mean:.4f}, "
          f"worst {stats.worst:.4f}")
    print(f"  drift events: {member['drifts']}, collect-burst rows "
          f"appended to the training DB")
    print(f"  path mix: {snap['telemetry']['binomial']['final_paths']}")

    (xt, _), _ = harness.training_arrays()
    print(f"  training DB: {db_rows_before} -> {len(xt)} rows")

    print("\nretraining on the refreshed database...")
    controller.reset()
    model, val_loss = train(harness, seed=1)
    serve(harness, shifted, controller)
    stats = controller.stats_for("binomial")
    print(f"  post-retrain shadow error: ewma {stats.mean:.4f} over "
          f"{stats.count} validations")

    telemetry_path = Path(workdir) / "qos_telemetry.json"
    controller.telemetry.export(telemetry_path, harness.events)
    summary = json.loads(telemetry_path.read_text())
    overhead = summary["phases"]["validation_overhead"]
    print(f"\ntelemetry exported to {telemetry_path} "
          f"(validation overhead {overhead * 100:.1f}% of serving time)")


if __name__ == "__main__":
    main()
