"""Classic HPAC techniques vs an ML surrogate on one region.

HPAC-ML extends HPAC, whose generic approximations (loop perforation,
memoization) remain available through the same directive machinery.
This example approximates American-option pricing three ways and
compares accuracy/speedup:

1. lattice perforation (``perfo``): fewer binomial time steps,
2. input memoization (``memo(in:tol)``): cache prices of similar options,
3. an HPAC-ML surrogate MLP.

Run:  python examples/hpac_techniques.py
"""

import tempfile
import time

import numpy as np

from repro.apps.binomial.kernel import generate_options, price_american
from repro.apps.harness import BinomialHarness
from repro.approx import approx_technique
from repro.nn import Trainer, rmse

N_STEPS = 96


def main():
    opts = generate_options(512, seed=3)
    t0 = time.perf_counter()
    exact = price_american(opts, n_steps=N_STEPS)
    base_time = time.perf_counter() - t0
    rows = [("accurate (96-step CRR lattice)", 0.0, 1.0)]

    # -- 1. perforation: run the lattice with a fraction of the steps --
    for rate in (0.5, 0.75):
        steps = max(4, int(round(N_STEPS * (1 - rate))))
        t0 = time.perf_counter()
        approx = price_american(opts, n_steps=steps)
        elapsed = time.perf_counter() - t0
        rows.append((f"perfo({rate:.2f}) -> {steps}-step lattice",
                     rmse(approx, exact), base_time / elapsed))

    # -- 2. memoization: tolerance-keyed price cache -------------------
    # Real portfolios hold many positions in the same listed contracts:
    # draw 32 standard option series and repeat each with sub-tolerance
    # jitter — the access pattern input-memoization targets.
    rng = np.random.default_rng(7)
    series = generate_options(32, seed=11)
    picks = rng.integers(0, len(series), size=len(opts))
    clustered = series[picks] + rng.normal(scale=1e-4,
                                           size=(len(opts), 5))
    clustered_exact = price_american(clustered, n_steps=N_STEPS)
    # Fair baseline for memoization: the same per-option region without
    # the cache (memoization skips work; it does not re-vectorize).
    t0 = time.perf_counter()
    for opt in clustered:
        price_american(opt[None], n_steps=N_STEPS)
    clustered_base = time.perf_counter() - t0

    @approx_technique("#pragma approx memo(in:0.01) in(params) out(price)")
    def price_one(params, price):
        price[...] = price_american(params[None], n_steps=N_STEPS)[0]

    prices = np.empty(len(clustered))
    t0 = time.perf_counter()
    for k, opt in enumerate(clustered):
        out = np.empty(1)
        price_one(np.ascontiguousarray(opt), out)
        prices[k] = out[0]
    elapsed = time.perf_counter() - t0
    stats = price_one.stats
    rows.append((f"memo(in:0.01), hit rate {stats['hit_rate']:.0%}",
                 rmse(prices, clustered_exact), clustered_base / elapsed))

    # -- 3. the HPAC-ML surrogate ---------------------------------------
    workdir = tempfile.mkdtemp(prefix="hpacml_tech_")
    harness = BinomialHarness(workdir, n_train=2048, n_test=512,
                              n_steps=N_STEPS)
    harness.collect()
    (xt, yt), (xv, yv) = harness.training_arrays()
    model = harness.make_builder(xt, yt)(
        {"hidden1_features": 160, "hidden2_features": 96}, seed=0)
    Trainer(model, lr=3e-3, batch_size=128, max_epochs=60, patience=15,
            seed=0).fit(xt, yt, xv, yv)
    metrics = harness.evaluate(model)
    rows.append(("HPAC-ML surrogate (MLP 160x96)", metrics.qoi_error,
                 metrics.speedup))

    print(f"{'technique':<38} {'RMSE':>8} {'speedup':>9}")
    for label, err, speed in rows:
        print(f"{label:<38} {err:>8.4f} {speed:>8.1f}x")
    print("\nshape: generic techniques trade accuracy for modest gains; "
          "the learned surrogate dominates both axes (paper Observation 1).")


if __name__ == "__main__":
    main()
