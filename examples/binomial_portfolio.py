"""Binomial Options: surrogate-accelerated American option pricing.

Reproduces the paper's Fig. 8b scenario at example scale: collect CRR
lattice prices for a training portfolio, train two MLP surrogates of
different capacity, and deploy both on a held-out portfolio to expose
the speedup-vs-accuracy trade-off (small = faster / less accurate,
large = slower / more accurate).

Run:  python examples/binomial_portfolio.py
"""

import tempfile

import numpy as np

from repro.apps.harness import BinomialHarness
from repro.nn import Trainer


def main():
    workdir = tempfile.mkdtemp(prefix="hpacml_binomial_")
    harness = BinomialHarness(workdir, n_train=3072, n_test=768,
                              n_steps=96)

    print("collecting lattice prices for the training portfolio...")
    harness.collect()
    (x_train, y_train), (x_val, y_val) = harness.training_arrays()
    print(f"  {len(x_train)} training / {len(x_val)} validation options")

    build = harness.make_builder(x_train, y_train)
    candidates = {
        "small": {"hidden1_features": 16, "hidden2_features": 0},
        "large": {"hidden1_features": 384, "hidden2_features": 256},
    }

    print(f"{'model':>6} {'params':>8} {'val loss':>10} "
          f"{'speedup':>8} {'RMSE':>8}")
    for label, arch in candidates.items():
        model = build(arch, seed=0)
        result = Trainer(model, lr=3e-3, batch_size=128, max_epochs=60,
                         patience=15, seed=0).fit(x_train, y_train,
                                                  x_val, y_val)
        metrics = harness.evaluate(model)
        print(f"{label:>6} {model.num_parameters():>8} "
              f"{result.best_val_loss:>10.4f} {metrics.speedup:>7.1f}x "
              f"{metrics.qoi_error:>8.4f}")

    print("\nexpected shape (paper Fig. 8b): the small model is faster, "
          "the large model is more accurate.")


if __name__ == "__main__":
    main()
