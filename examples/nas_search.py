"""Nested Bayesian-optimization architecture search (paper §V-C).

Runs the two-level multi-objective search on the Binomial Options
benchmark: the outer loop proposes architectures from the Table IV
space and minimizes (inference latency, validation error); the inner
loop tunes Table V hyperparameters per architecture.  Prints every
evaluated model and the resulting Pareto front.

Run:  python examples/nas_search.py
"""

import tempfile

from repro.apps.harness import BinomialHarness
from repro.search import NestedSearch, arch_space_for


def main():
    workdir = tempfile.mkdtemp(prefix="hpacml_nas_")
    harness = BinomialHarness(workdir, n_train=2048, n_test=512,
                              n_steps=64)
    print("collecting training data...")
    harness.collect()
    (x_train, y_train), (x_val, y_val) = harness.training_arrays()
    build = harness.make_builder(x_train, y_train)

    search = NestedSearch(
        arch_space=arch_space_for("binomial"), build_model=build,
        x_train=x_train, y_train=y_train, x_val=x_val, y_val=y_val,
        n_inner=3, max_epochs=12, seed=0)

    print("running the nested BO search "
          "(outer: architecture, inner: hyperparameters)...")

    def progress(trial, trials):
        print(f"  trial {trial.index:>2}: h1={trial.arch['hidden1_features']:>3} "
              f"h2={trial.arch['hidden2_features']:>3} "
              f"params={trial.n_params:>7} "
              f"val={trial.val_error:.4f} lat={trial.latency * 1e3:.2f}ms")

    result = search.run(n_outer=8, stale_limit=5, callback=progress)

    print("\nPareto-optimal models (latency vs validation error):")
    for t in sorted(result.pareto_trials(), key=lambda t: t.latency):
        print(f"  params={t.n_params:>7} latency={t.latency * 1e3:6.2f}ms "
              f"val_error={t.val_error:.4f} "
              f"lr={t.hypers['learning_rate']:.1e} "
              f"bs={int(t.hypers['batch_size'])}")

    best = result.best_by_error()
    metrics = harness.evaluate(best.model)
    print(f"\ndeploying the most accurate model: "
          f"{metrics.speedup:.1f}x speedup, RMSE {metrics.qoi_error:.4f}")


if __name__ == "__main__":
    main()
