"""ParticleFilter: a surrogate that beats the algorithmic approximation.

Paper Observation 1: the particle filter is itself an approximation
(RMSE ~0.5 against ground truth); a CNN trained on the ground-truth
locations captured during data collection can be both *faster* and
*more accurate* than the filter it replaces.

Run:  python examples/particlefilter_tracking.py
"""

import tempfile

import numpy as np

from repro.apps.harness import ParticleFilterHarness
from repro.nn import Trainer


def main():
    workdir = tempfile.mkdtemp(prefix="hpacml_pf_")
    harness = ParticleFilterHarness(workdir, n_train_frames=256,
                                    n_test_frames=64, frame_size=32)

    print("collecting frames + ground-truth locations...")
    harness.collect()
    (x_train, y_train), (x_val, y_val) = harness.training_arrays()
    print(f"  {len(x_train)} training frames of shape "
          f"{x_train.shape[1:]}")

    print("training the CNN surrogate...")
    build = harness.make_builder(x_train, y_train)
    model = build({"conv_kernel": 4, "conv_stride": 2,
                   "maxpool_kernel": 2, "fc2_size": 64}, seed=0)
    result = Trainer(model, lr=2e-3, batch_size=32, max_epochs=80,
                     patience=20, seed=0).fit(x_train, y_train,
                                              x_val, y_val)
    print(f"  val loss {result.best_val_loss:.4f}, "
          f"{model.num_parameters()} parameters")

    alg_rmse = harness.accurate_vs_truth_rmse()
    metrics = harness.evaluate(model)
    print(f"\nparticle filter RMSE vs ground truth : {alg_rmse:.3f}")
    print(f"CNN surrogate   RMSE vs ground truth : {metrics.qoi_error:.3f}")
    print(f"end-to-end speedup                    : {metrics.speedup:.1f}x")
    if metrics.qoi_error < alg_rmse:
        print("\n-> the surrogate beats the algorithmic approximation "
              "while running faster (paper Observation 1).")
    else:
        print("\n-> the surrogate approaches the algorithmic filter; "
              "more frames/epochs close the gap.")


if __name__ == "__main__":
    main()
